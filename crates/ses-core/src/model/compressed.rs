//! Dictionary-encoded, block-compressed columnar interest storage — the
//! third [`super::InterestMatrix`] backend, built for the 10⁵–10⁶-user axis.
//!
//! The dataset generators draw interest values from small alphabets (the
//! quantized scale generators cap them explicitly), so a column is mostly
//! repetitions of a few hundred distinct doubles. [`CompressedInterest`]
//! stores, per item:
//!
//! * one global **dictionary** of distinct non-zero values (`Vec<f64>`,
//!   first-use order) and a `u16`/`u32` **code** per stored entry
//!   ([`CodeVec`] starts narrow and promotes to wide only if the dictionary
//!   outgrows `u16`);
//! * entries grouped into **512-user-aligned blocks** (the same constant as
//!   the engine's reduction geometry, [`crate::parallel::PAR_BLOCK`]). A
//!   *full* block (512 stored entries) stores **no user indices at all** —
//!   the user is `base + position` — while a partial block keeps one `u16`
//!   local offset per entry. On a dense quantized column this is ~2 bytes
//!   per entry against the sparse layout's 12 (`u32` user + `f64` value);
//! * a per-item block directory with per-block non-zero counts, and the
//!   same cached column sums as the other layouts.
//!
//! **Bit-identity.** A column decodes to exactly the `(user, µ)` sequence
//! the sparse layout stores — same values (codes are exact `f64` bit
//! patterns, never re-derived), same ascending-user order, same positional
//! indexing for `column_part`. The cached column sum is the identical
//! flat left-to-right [`stored_sum`] over the decoded sequence. So every
//! consumer of the `InterestMatrix` API — the fused scoring kernel, the
//! delta layer, the stream repairer, the constraint gate — produces the
//! same output bits on `Compressed` as on `Sparse`, at any thread count.
//!
//! Mutations favour correctness over speed: `push_item` appends
//! incrementally (the streaming-generation hot path), while point edits
//! (`set_value`, `remove_item`, user churn) decode and re-encode the
//! matrix, re-interning the dictionary in canonical first-use order. Delta
//! streams run at test scale; the million-user path is build-once.

use super::interest::{stored_sum, user_keep_mask};
use crate::parallel::PAR_BLOCK;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Users per compressed block — deliberately the engine's reduction-block
/// constant so the shard unit of a future multi-process split matches the
/// sweep geometry.
pub const COMPRESSED_BLOCK: usize = PAR_BLOCK;

/// The physical layout of an interest matrix, selectable per instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageKind {
    /// Item-major dense matrix — the faithful-reproduction layout.
    Dense,
    /// CSC non-zero lists — the EBSN-sparsity layout.
    Sparse,
    /// Dictionary-encoded 512-aligned compressed blocks — the scale layout.
    Compressed,
}

impl StorageKind {
    /// All kinds, in declaration order.
    pub const ALL: [StorageKind; 3] = [Self::Dense, Self::Sparse, Self::Compressed];

    /// Canonical lowercase name (the `--storage` flag vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Self::Dense => "dense",
            Self::Sparse => "sparse",
            Self::Compressed => "compressed",
        }
    }

    /// Parses a canonical name; `None` for anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "dense" => Some(Self::Dense),
            "sparse" => Some(Self::Sparse),
            "compressed" => Some(Self::Compressed),
            _ => None,
        }
    }
}

impl std::fmt::Display for StorageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-entry value codes: narrow while the dictionary fits `u16`, promoted
/// to wide exactly once if it doesn't (quantized generators never do).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum CodeVec {
    /// `u16` codes — 2 bytes per stored entry.
    Narrow(Vec<u16>),
    /// `u32` codes — for dictionaries beyond 65 536 distinct values.
    Wide(Vec<u32>),
}

impl CodeVec {
    fn new() -> Self {
        Self::Narrow(Vec::new())
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            Self::Narrow(v) => v.len(),
            Self::Wide(v) => v.len(),
        }
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> u32 {
        match self {
            Self::Narrow(v) => v[i] as u32,
            Self::Wide(v) => v[i],
        }
    }

    /// Appends one code, promoting narrow → wide on the first code that
    /// doesn't fit.
    fn push(&mut self, code: u32) {
        if let Self::Narrow(v) = self {
            if let Ok(c) = u16::try_from(code) {
                v.push(c);
                return;
            }
            *self = Self::Wide(v.iter().map(|&c| c as u32).collect());
        }
        match self {
            Self::Wide(v) => v.push(code),
            Self::Narrow(_) => unreachable!("narrow path returned above"),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            Self::Narrow(v) => v.len() * 2,
            Self::Wide(v) => v.len() * 4,
        }
    }
}

/// One non-empty 512-user block of one item's column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct ColumnBlock {
    /// User-range index: the block covers users
    /// `[block · 512, block · 512 + 512)`.
    block: u32,
    /// Stored entries in this block (`1..=512`). `len == 512` means the
    /// block is full and user indices are implicit (`base + position`).
    len: u16,
    /// Absolute index of the block's first entry in `codes`.
    entry_start: usize,
    /// Absolute index of the block's first local offset in `offsets`
    /// (unused — equal to the next block's — when the block is full).
    offset_start: usize,
}

impl ColumnBlock {
    #[inline]
    fn base(&self) -> usize {
        self.block as usize * COMPRESSED_BLOCK
    }

    #[inline]
    fn entry_end(&self) -> usize {
        self.entry_start + self.len as usize
    }

    #[inline]
    fn is_full(&self) -> bool {
        self.len as usize == COMPRESSED_BLOCK
    }
}

/// Transient dictionary index used while encoding — the matrix itself never
/// holds the hash map, only the plain `Vec<f64>` dictionary.
#[derive(Default)]
struct Interner {
    by_bits: HashMap<u64, u32>,
}

impl Interner {
    fn for_dict(dict: &[f64]) -> Self {
        let by_bits = dict.iter().enumerate().map(|(i, v)| (v.to_bits(), i as u32)).collect();
        Self { by_bits }
    }

    #[inline]
    fn intern(&mut self, dict: &mut Vec<f64>, value: f64) -> u32 {
        *self.by_bits.entry(value.to_bits()).or_insert_with(|| {
            dict.push(value);
            (dict.len() - 1) as u32
        })
    }
}

/// Dictionary-encoded, 512-aligned block-compressed interest storage. See
/// the module docs for the layout and the bit-identity argument.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressedInterest {
    num_users: usize,
    /// Distinct non-zero values, in first-use (encode-order) position; codes
    /// index into it. Exact `f64` bit patterns — never re-derived.
    dict: Vec<f64>,
    /// One code per stored entry, all items concatenated in column order.
    codes: CodeVec,
    /// Local user offsets (`user - block base`) of entries in **partial**
    /// blocks only, in the same global order; full blocks store none.
    offsets: Vec<u16>,
    /// Non-empty blocks, grouped by item, ascending block index within.
    blocks: Vec<ColumnBlock>,
    /// `block_ptr[item]..block_ptr[item+1]` delimits item's blocks.
    block_ptr: Vec<usize>,
    /// `entry_ptr[item]..entry_ptr[item+1]` delimits item's entries.
    entry_ptr: Vec<usize>,
    /// Cached per-item column sums — the same bitwise left-to-right
    /// [`stored_sum`] invariant as the dense and sparse layouts.
    col_sums: Vec<f64>,
}

impl CompressedInterest {
    /// An empty matrix (zero items) over the given user count.
    pub fn empty(num_users: usize) -> Self {
        Self {
            num_users,
            dict: Vec::new(),
            codes: CodeVec::new(),
            offsets: Vec::new(),
            blocks: Vec::new(),
            block_ptr: vec![0],
            entry_ptr: vec![0],
            col_sums: Vec::new(),
        }
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.codes.len()
    }

    /// Number of distinct dictionary values currently interned.
    #[inline]
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// Number of users (rows).
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of items (columns).
    #[inline]
    pub fn num_items(&self) -> usize {
        self.entry_ptr.len() - 1
    }

    /// Stored entries of one item's column.
    #[inline]
    pub fn column_len(&self, item: usize) -> usize {
        self.entry_ptr[item + 1] - self.entry_ptr[item]
    }

    /// Cached column sum (O(1)).
    #[inline]
    pub fn column_sum(&self, item: usize) -> f64 {
        self.col_sums[item]
    }

    /// Approximate resident bytes of the backing arrays (element counts ×
    /// element sizes; allocator slack excluded so the figure is
    /// deterministic).
    pub fn heap_bytes(&self) -> usize {
        self.dict.len() * 8
            + self.codes.heap_bytes()
            + self.offsets.len() * 2
            + self.blocks.len() * std::mem::size_of::<ColumnBlock>()
            + (self.block_ptr.len() + self.entry_ptr.len()) * 8
            + self.col_sums.len() * 8
    }

    /// Value lookup; absent entries are `0.0`.
    ///
    /// # Panics
    /// Panics if `item` or `user` is out of range.
    pub fn value(&self, item: usize, user: usize) -> f64 {
        assert!(user < self.num_users, "user {user} out of range");
        let blocks = &self.blocks[self.block_ptr[item]..self.block_ptr[item + 1]];
        let want = (user / COMPRESSED_BLOCK) as u32;
        let Ok(b) = blocks.binary_search_by_key(&want, |b| b.block) else {
            return 0.0;
        };
        let b = &blocks[b];
        let local = user - b.base();
        if b.is_full() {
            return self.dict[self.codes.get(b.entry_start + local) as usize];
        }
        let offs = &self.offsets[b.offset_start..b.offset_start + b.len as usize];
        match offs.binary_search(&(local as u16)) {
            Ok(i) => self.dict[self.codes.get(b.entry_start + i) as usize],
            Err(_) => 0.0,
        }
    }

    /// Decodes the `(user, value)` entry at absolute position `pos`, given
    /// the block that contains it.
    #[inline]
    fn decode_at(&self, b: &ColumnBlock, pos: usize) -> (usize, f64) {
        let rel = pos - b.entry_start;
        let user = if b.is_full() {
            b.base() + rel
        } else {
            b.base() + self.offsets[b.offset_start + rel] as usize
        };
        (user, self.dict[self.codes.get(pos) as usize])
    }

    /// The block directory index (into `self.blocks`) of the block holding
    /// absolute entry `pos` of `item`. `pos` must lie inside the item.
    fn block_of(&self, item: usize, pos: usize) -> usize {
        let (lo, hi) = (self.block_ptr[item], self.block_ptr[item + 1]);
        // First block whose entry range ends beyond pos.
        lo + self.blocks[lo..hi].partition_point(|b| b.entry_end() <= pos)
    }

    /// Streams `(user, µ)` over positions `range` of `item`'s column — the
    /// compressed analogue of slicing the sparse parallel arrays, with one
    /// layout dispatch **per block** rather than per entry. This is the
    /// scoring kernel's entry point; the iteration order is identical to
    /// the sparse layout's, so the fixed-block reduction sees the same
    /// sequence of addends.
    ///
    /// # Panics
    /// Panics if `range` exceeds `column_len(item)`.
    pub fn for_each_in_part(
        &self,
        item: usize,
        range: std::ops::Range<usize>,
        mut f: impl FnMut(usize, f64),
    ) {
        assert!(range.end <= self.column_len(item), "range exceeds column length");
        if range.start >= range.end {
            return;
        }
        let mut pos = self.entry_ptr[item] + range.start;
        let end = self.entry_ptr[item] + range.end;
        let mut bi = self.block_of(item, pos);
        while pos < end {
            let b = &self.blocks[bi];
            let stop = end.min(b.entry_end());
            let base = b.base();
            if b.is_full() {
                let rel0 = pos - b.entry_start;
                match &self.codes {
                    CodeVec::Narrow(codes) => {
                        for (i, &c) in codes[pos..stop].iter().enumerate() {
                            f(base + rel0 + i, self.dict[c as usize]);
                        }
                    }
                    CodeVec::Wide(codes) => {
                        for (i, &c) in codes[pos..stop].iter().enumerate() {
                            f(base + rel0 + i, self.dict[c as usize]);
                        }
                    }
                }
            } else {
                let off0 = b.offset_start + (pos - b.entry_start);
                let offs = &self.offsets[off0..off0 + (stop - pos)];
                match &self.codes {
                    CodeVec::Narrow(codes) => {
                        for (&o, &c) in offs.iter().zip(&codes[pos..stop]) {
                            f(base + o as usize, self.dict[c as usize]);
                        }
                    }
                    CodeVec::Wide(codes) => {
                        for (&o, &c) in offs.iter().zip(&codes[pos..stop]) {
                            f(base + o as usize, self.dict[c as usize]);
                        }
                    }
                }
            }
            pos = stop;
            bi += 1;
        }
    }

    /// Iterator state for [`super::ColumnIter::Compressed`]: the absolute
    /// entry range of positions `range` of `item`'s column, plus the index
    /// of the block containing the first position.
    pub(crate) fn part_cursor(
        &self,
        item: usize,
        range: std::ops::Range<usize>,
    ) -> (usize, usize, usize) {
        assert!(range.end <= self.column_len(item), "range exceeds column length");
        let pos = self.entry_ptr[item] + range.start;
        let end = self.entry_ptr[item] + range.end;
        let block_idx = if pos < end { self.block_of(item, pos) } else { self.block_ptr[item] };
        (pos, end, block_idx)
    }

    /// Advances the [`super::ColumnIter::Compressed`] cursor by one entry.
    #[inline]
    pub(crate) fn cursor_next(
        &self,
        pos: &mut usize,
        end: usize,
        block_idx: &mut usize,
    ) -> Option<(usize, f64)> {
        if *pos >= end {
            return None;
        }
        while self.blocks[*block_idx].entry_end() <= *pos {
            *block_idx += 1;
        }
        let out = self.decode_at(&self.blocks[*block_idx], *pos);
        *pos += 1;
        Some(out)
    }

    /// Encodes one item's sorted non-zero column at the arrays' tails and
    /// pushes its block directory, pointers, and cached sum. The core of
    /// both the incremental `push_item` and the rebuild paths.
    fn encode_column(
        &mut self,
        entries: impl Iterator<Item = (u32, f64)>,
        interner: &mut Interner,
    ) {
        let item_block_start = self.blocks.len();
        let mut sum = 0.0;
        let mut prev: Option<u32> = None;
        for (user, value) in entries {
            assert!((user as usize) < self.num_users, "user {user} out of range");
            assert!(prev.is_none_or(|p| p < user), "column entries must be strictly increasing");
            prev = Some(user);
            debug_assert!(value != 0.0, "zeros are dropped before encoding");
            let block = user / COMPRESSED_BLOCK as u32;
            let local = (user as usize % COMPRESSED_BLOCK) as u16;
            // A new block starts on the item's first entry or when the user
            // crosses a 512 boundary (entries arrive in ascending user
            // order, so each block index appears as one contiguous run).
            let needs_new = self.blocks.len() == item_block_start
                || self.blocks.last().expect("item has blocks").block != block;
            if needs_new {
                self.blocks.push(ColumnBlock {
                    block,
                    len: 0,
                    entry_start: self.codes.len(),
                    offset_start: self.offsets.len(),
                });
            }
            let code = interner.intern(&mut self.dict, value);
            self.codes.push(code);
            self.offsets.push(local);
            let b = self.blocks.last_mut().expect("pushed above");
            b.len += 1;
            sum += value;
        }
        // Full blocks drop their offsets: implicit users. (Done per item,
        // after the fact, so the loop above stays branch-light.)
        self.compact_full_block_offsets();
        self.block_ptr.push(self.blocks.len());
        self.entry_ptr.push(self.codes.len());
        self.col_sums.push(sum);
    }

    /// Drops the stored offsets of every full block of the item currently
    /// being finalized, shifting later offsets down.
    fn compact_full_block_offsets(&mut self) {
        let item_block_start = *self.block_ptr.last().expect("block_ptr is never empty");
        let mut write = match self.blocks.get(item_block_start) {
            Some(b) => b.offset_start,
            None => return,
        };
        let mut read = write;
        for bi in item_block_start..self.blocks.len() {
            let (len, full) = {
                let b = &self.blocks[bi];
                (b.len as usize, b.is_full())
            };
            self.blocks[bi].offset_start = write;
            if full {
                read += len;
            } else {
                if read != write {
                    self.offsets.copy_within(read..read + len, write);
                }
                read += len;
                write += len;
            }
        }
        self.offsets.truncate(write);
    }

    /// Appends one item column (dense input; zeros dropped) — incremental,
    /// the streaming-generation hot path. See
    /// [`super::InterestMatrix::push_item`].
    pub fn push_item(&mut self, column: &[f64]) {
        assert_eq!(column.len(), self.num_users, "column length must equal user count");
        let mut interner = Interner::for_dict(&self.dict);
        let entries =
            column.iter().enumerate().filter(|(_, &v)| v != 0.0).map(|(u, &v)| (u as u32, v));
        self.encode_column(entries, &mut interner);
    }

    /// Decodes every column into sorted `(user, value)` entry lists.
    fn decode_columns(&self) -> Vec<Vec<(u32, f64)>> {
        (0..self.num_items())
            .map(|item| {
                let mut col = Vec::with_capacity(self.column_len(item));
                self.for_each_in_part(item, 0..self.column_len(item), |u, v| {
                    col.push((u as u32, v));
                });
                col
            })
            .collect()
    }

    /// Rebuilds in place from decoded columns, re-interning the dictionary
    /// in canonical first-use order (dead codes from prior removals are
    /// dropped). All point mutations funnel through here — correctness over
    /// speed; see the module docs.
    fn rebuild_from(&mut self, num_users: usize, columns: Vec<Vec<(u32, f64)>>) {
        let mut fresh = Self::empty(num_users);
        let mut interner = Interner::default();
        for col in columns {
            fresh.encode_column(col.into_iter().filter(|&(_, v)| v != 0.0), &mut interner);
        }
        *self = fresh;
    }

    /// Removes one item column. See [`super::InterestMatrix::remove_item`].
    pub fn remove_item(&mut self, item: usize) {
        assert!(item < self.num_items(), "item {item} out of range");
        let mut cols = self.decode_columns();
        cols.remove(item);
        self.rebuild_from(self.num_users, cols);
    }

    /// Sets one value, preserving the drop-exact-zeros convention. See
    /// [`super::InterestMatrix::set_value`].
    pub fn set_value(&mut self, item: usize, user: usize, value: f64) {
        assert!(item < self.num_items(), "item {item} out of range");
        assert!(user < self.num_users, "user {user} out of range");
        let mut cols = self.decode_columns();
        let col = &mut cols[item];
        match col.binary_search_by_key(&(user as u32), |&(u, _)| u) {
            Ok(i) if value != 0.0 => col[i].1 = value,
            Ok(i) => {
                col.remove(i);
            }
            Err(_) if value == 0.0 => {}
            Err(i) => col.insert(i, (user as u32, value)),
        }
        self.rebuild_from(self.num_users, cols);
    }

    /// Appends new users (zeros dropped). See
    /// [`super::InterestMatrix::append_users`].
    pub fn append_users(&mut self, rows: &[Vec<f64>]) {
        let num_items = self.num_items();
        for row in rows {
            assert_eq!(row.len(), num_items, "user row length must equal item count");
        }
        let mut cols = self.decode_columns();
        for (item, col) in cols.iter_mut().enumerate() {
            for (j, row) in rows.iter().enumerate() {
                if row[item] != 0.0 {
                    col.push(((self.num_users + j) as u32, row[item]));
                }
            }
        }
        self.rebuild_from(self.num_users + rows.len(), cols);
    }

    /// Removes users, remapping surviving indices down. See
    /// [`super::InterestMatrix::remove_users`].
    pub fn remove_users(&mut self, users: &[usize]) {
        let keep = user_keep_mask(self.num_users, users);
        let mut remap = vec![0u32; self.num_users];
        let mut next = 0u32;
        for (u, &k) in keep.iter().enumerate() {
            remap[u] = next;
            if k {
                next += 1;
            }
        }
        let cols = self
            .decode_columns()
            .into_iter()
            .map(|col| {
                col.into_iter()
                    .filter(|&(u, _)| keep[u as usize])
                    .map(|(u, v)| (remap[u as usize], v))
                    .collect()
            })
            .collect();
        self.rebuild_from(self.num_users - users.len(), cols);
    }

    /// Drops any stored exact zeros (possible only in hand-built or
    /// deserialized data — every mutation path drops them) and re-interns
    /// the dictionary canonically. Returns the number of entries dropped.
    pub fn canonicalize(&mut self) -> usize {
        let before = self.nnz();
        let cols = self.decode_columns();
        self.rebuild_from(self.num_users, cols);
        before - self.nnz()
    }

    /// Validates internal consistency: sorted blocks, pointer monotonicity,
    /// codes within the dictionary, and cached sums equal to a bitwise
    /// recompute of the decoded columns.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.block_ptr.len() != self.entry_ptr.len() {
            return Err("block_ptr / entry_ptr length mismatch".into());
        }
        for item in 0..self.num_items() {
            let mut values = Vec::new();
            let mut prev_user = None;
            self.for_each_in_part(item, 0..self.column_len(item), |u, v| {
                assert!(prev_user.is_none_or(|p| p < u), "item {item}: users not increasing");
                prev_user = Some(u);
                values.push(v);
            });
            let want = stored_sum(&values);
            if want.to_bits() != self.col_sums[item].to_bits() {
                return Err(format!("item {item}: cached sum drifted"));
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`CompressedInterest`]. Entries may be pushed in
/// any per-item order; `build` sorts each column and deduplicates (last
/// write wins), matching [`super::SparseInterestBuilder`]'s semantics while
/// holding only 8 transient bytes per entry (a `u32` user plus a `u32`
/// code) — the property that lets the streaming generators assemble a
/// million-user matrix without a dense intermediate.
#[derive(Debug)]
pub struct CompressedInterestBuilder {
    num_items: usize,
    num_users: usize,
    dict: Vec<f64>,
    index: HashMap<u64, u32>,
    cols: Vec<ColBuf>,
}

#[derive(Debug, Default)]
struct ColBuf {
    users: Vec<u32>,
    codes: Vec<u32>,
}

impl CompressedInterestBuilder {
    /// A builder for a matrix of the given shape.
    pub fn new(num_items: usize, num_users: usize) -> Self {
        let mut cols = Vec::with_capacity(num_items);
        cols.resize_with(num_items, ColBuf::default);
        Self { num_items, num_users, dict: Vec::new(), index: HashMap::new(), cols }
    }

    /// Adds one `(item, user) -> value` entry. Zero values are dropped.
    ///
    /// # Panics
    /// Panics if `item` or `user` is out of range.
    pub fn push(&mut self, item: usize, user: usize, value: f64) {
        assert!(item < self.num_items, "item {item} out of range");
        assert!(user < self.num_users, "user {user} out of range");
        if value == 0.0 {
            return;
        }
        let code = *self.index.entry(value.to_bits()).or_insert_with(|| {
            self.dict.push(value);
            (self.dict.len() - 1) as u32
        });
        let col = &mut self.cols[item];
        col.users.push(user as u32);
        col.codes.push(code);
    }

    /// Finalizes into block-compressed form.
    pub fn build(self) -> CompressedInterest {
        let Self { num_users, dict, cols, .. } = self;
        let mut out = CompressedInterest::empty(num_users);
        // Encode with a fresh interner so the final dictionary is in
        // first-use order of the *sorted* entry stream — the same canonical
        // order `to_compressed` and the rebuild paths produce.
        let mut interner = Interner::default();
        for col in cols {
            let mut entries: Vec<(u32, f64)> =
                col.users.iter().zip(&col.codes).map(|(&u, &c)| (u, dict[c as usize])).collect();
            entries.sort_by_key(|&(u, _)| u);
            // Last write wins on duplicates: keep the final occurrence.
            let mut dedup: Vec<(u32, f64)> = Vec::with_capacity(entries.len());
            for (u, v) in entries {
                match dedup.last_mut() {
                    Some(last) if last.0 == u => last.1 = v,
                    _ => dedup.push((u, v)),
                }
            }
            out.encode_column(dedup.into_iter(), &mut interner);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::interest::{DenseInterest, InterestMatrix};
    use super::*;

    fn sample_dense() -> DenseInterest {
        DenseInterest::from_raw(2, 3, vec![0.9, 0.0, 0.2, 0.3, 0.6, 0.0]).unwrap()
    }

    fn sample_compressed() -> CompressedInterest {
        InterestMatrix::from(sample_dense()).to_compressed()
    }

    #[test]
    fn skips_zeros_and_looks_up_values() {
        let c = sample_compressed();
        assert_eq!(c.nnz(), 4);
        assert_eq!(c.value(0, 0), 0.9);
        assert_eq!(c.value(0, 1), 0.0);
        assert_eq!(c.value(0, 2), 0.2);
        assert_eq!(c.value(1, 1), 0.6);
        assert_eq!(c.column_len(0), 2);
        assert_eq!(c.dict_len(), 4);
    }

    #[test]
    fn dictionary_dedups_repeated_values() {
        let d = DenseInterest::from_fn(3, 10, |_, u| if u % 2 == 0 { 0.25 } else { 0.75 });
        let c = InterestMatrix::from(d).to_compressed();
        assert_eq!(c.nnz(), 30);
        assert_eq!(c.dict_len(), 2);
    }

    #[test]
    fn full_blocks_store_no_offsets() {
        // 512 users, fully dense column => exactly one full block, zero
        // offsets; 513 users => one full + one partial block, one offset.
        let full = InterestMatrix::from(DenseInterest::from_fn(1, COMPRESSED_BLOCK, |_, _| 0.5))
            .to_compressed();
        assert_eq!(full.blocks.len(), 1);
        assert!(full.offsets.is_empty());
        let spill =
            InterestMatrix::from(DenseInterest::from_fn(1, COMPRESSED_BLOCK + 1, |_, _| 0.5))
                .to_compressed();
        assert_eq!(spill.blocks.len(), 2);
        assert_eq!(spill.offsets.len(), 1);
        assert_eq!(spill.value(0, COMPRESSED_BLOCK), 0.5);
        spill.check_consistency().unwrap();
    }

    #[test]
    fn multi_block_columns_decode_in_order() {
        let nu = 3 * COMPRESSED_BLOCK + 17;
        let d = DenseInterest::from_fn(2, nu, |item, u| {
            if (u + item) % 3 == 0 {
                0.0
            } else {
                ((u % 7) + 1) as f64 / 8.0
            }
        });
        let dense = InterestMatrix::from(d);
        let sparse = dense.to_sparse();
        let c = dense.to_compressed();
        c.check_consistency().unwrap();
        for item in 0..2 {
            let (us, vs) = sparse.column_slices(item);
            let mut got = Vec::new();
            c.for_each_in_part(item, 0..c.column_len(item), |u, v| got.push((u as u32, v)));
            let want: Vec<(u32, f64)> = us.iter().copied().zip(vs.iter().copied()).collect();
            assert_eq!(got, want, "item {item}");
            assert_eq!(c.column_sum(item).to_bits(), stored_sum(vs).to_bits(), "item {item} sum");
        }
    }

    #[test]
    fn code_vec_promotes_to_wide_past_u16_dictionary() {
        let n = u16::MAX as usize + 10;
        let d = DenseInterest::from_fn(1, n, |_, u| (u + 1) as f64 / (n + 1) as f64);
        let c = InterestMatrix::from(d.clone()).to_compressed();
        assert_eq!(c.dict_len(), n);
        assert!(matches!(c.codes, CodeVec::Wide(_)), "dictionary overflow must promote codes");
        c.check_consistency().unwrap();
        // Values survive the promotion exactly.
        for u in [0, 1, u16::MAX as usize, n - 1] {
            assert_eq!(c.value(0, u).to_bits(), d.value(0, u).to_bits());
        }
    }

    #[test]
    fn builder_handles_unordered_and_duplicate_pushes() {
        let mut b = CompressedInterestBuilder::new(2, 4);
        b.push(1, 3, 0.5);
        b.push(0, 2, 0.1);
        b.push(0, 0, 0.7);
        b.push(0, 2, 0.4); // overwrite
        b.push(1, 1, 0.0); // dropped
        let c = b.build();
        assert_eq!(c.nnz(), 3);
        assert_eq!(c.value(0, 2), 0.4);
        assert_eq!(c.value(0, 0), 0.7);
        assert_eq!(c.value(1, 3), 0.5);
        assert_eq!(c.value(1, 1), 0.0);
        c.check_consistency().unwrap();
    }

    #[test]
    fn rebuild_mutations_drop_dead_dictionary_codes() {
        let mut c = sample_compressed();
        c.set_value(0, 0, 0.2); // 0.9 becomes dead
        assert_eq!(c.value(0, 0), 0.2);
        assert_eq!(c.dict_len(), 3, "rebuild must drop dead codes");
        c.check_consistency().unwrap();
    }

    #[test]
    fn heap_bytes_reflects_full_block_compression() {
        // A fully dense quantized column: ~2 bytes/entry, far below the
        // sparse layout's 12.
        let nu = 8 * COMPRESSED_BLOCK;
        let d = DenseInterest::from_fn(4, nu, |_, u| ((u % 16) + 1) as f64 / 16.0);
        let m = InterestMatrix::from(d);
        let sparse_bytes = {
            let s = m.to_sparse();
            s.heap_bytes()
        };
        let compressed_bytes = m.to_compressed().heap_bytes();
        assert!(
            compressed_bytes * 3 <= sparse_bytes,
            "compressed {compressed_bytes} > sparse {sparse_bytes} / 3"
        );
    }
}
