//! Data model of the SES problem: events, intervals, users (interest and
//! activity), competing events, and the immutable [`Instance`] that ties
//! them together.

mod activity;
mod compressed;
mod event;
mod instance;
mod interest;
mod interval;

pub use activity::ActivityMatrix;
pub use compressed::{
    CompressedInterest, CompressedInterestBuilder, StorageKind, COMPRESSED_BLOCK,
};
pub use event::{CompetingEvent, Event};
pub use instance::{running_example, Instance, InstanceBuilder};
pub(crate) use interest::user_keep_mask;
pub use interest::{
    ColumnIter, DenseInterest, InterestMatrix, SparseInterest, SparseInterestBuilder,
};
pub use interval::Interval;
