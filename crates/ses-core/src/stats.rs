//! Instrumentation counters reproducing the paper's evaluation metrics.
//!
//! The experimental analysis (§4.1) measures three quantities per run:
//!
//! 1. **total utility** Ω(S) — computed by the algorithms / evaluator,
//! 2. **execution time** — measured by the harness,
//! 3. **number of computations for assignment scores** — "`|U|` per
//!    assignment score", i.e. the per-user work of evaluating Eq. 4.
//!
//! Additionally Fig. 10b measures the **number of assignments examined**
//! (search space) by ALG vs INC.
//!
//! [`Stats`] tracks all of these. `score_computations` counts Eq.-4
//! evaluations; `user_ops` counts the users actually iterated inside them
//! (for dense interest this is `score_computations × |U|`, matching the
//! paper's accounting; for sparse interest it is the true work performed).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Counters accumulated by the scoring engine and the algorithms.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stats {
    /// Number of assignment-score evaluations (Eq. 4).
    pub score_computations: u64,
    /// Total per-user operations performed inside score evaluations.
    /// This is the paper's "number of computations" metric (Figs. 5e–5h).
    pub user_ops: u64,
    /// Assignments touched while scanning/selecting/updating
    /// (Fig. 10b's "number of assignments" metric).
    pub assignments_examined: u64,
    /// Number of assignments actually selected into the schedule.
    pub selections: u64,
    /// Number of score updates (re-computations after the initial pass).
    /// `score_computations - initial |E|·|T| pass` for ALG-family algorithms.
    pub score_updates: u64,
    /// Candidates the bound-first gate *seeded* with a cheap separable
    /// upper bound instead of an eager full sweep (counted at seed time).
    /// A seeded candidate pays for a sweep later only if its bound survives
    /// Φ — those late sweeps appear in `score_updates`, so the sweeps
    /// avoided outright are `bound_skips` minus the gated run's extra
    /// updates. Zero unless a run opts into the gate.
    pub bound_skips: u64,
}

impl Stats {
    /// A zeroed counter set.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one assignment-score evaluation that touched `users` users.
    #[inline]
    pub fn record_score(&mut self, users: usize) {
        self.score_computations += 1;
        self.user_ops += users as u64;
    }

    /// Records one assignment-score *update* (a re-computation) that touched
    /// `users` users.
    #[inline]
    pub fn record_update(&mut self, users: usize) {
        self.record_score(users);
        self.score_updates += 1;
    }

    /// Records `n` assignments examined during a scan.
    #[inline]
    pub fn record_examined(&mut self, n: u64) {
        self.assignments_examined += n;
    }

    /// Records one selected assignment.
    #[inline]
    pub fn record_selection(&mut self) {
        self.selections += 1;
    }

    /// Records one candidate seeded with a bound instead of an eager sweep.
    #[inline]
    pub fn record_bound_skip(&mut self) {
        self.bound_skips += 1;
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &Stats) {
        *self += *other;
    }
}

impl Add for Stats {
    type Output = Stats;

    fn add(self, rhs: Stats) -> Stats {
        Stats {
            score_computations: self.score_computations + rhs.score_computations,
            user_ops: self.user_ops + rhs.user_ops,
            assignments_examined: self.assignments_examined + rhs.assignments_examined,
            selections: self.selections + rhs.selections,
            score_updates: self.score_updates + rhs.score_updates,
            bound_skips: self.bound_skips + rhs.bound_skips,
        }
    }
}

impl AddAssign for Stats {
    fn add_assign(&mut self, rhs: Stats) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_score_accumulates() {
        let mut s = Stats::new();
        s.record_score(100);
        s.record_score(50);
        assert_eq!(s.score_computations, 2);
        assert_eq!(s.user_ops, 150);
        assert_eq!(s.score_updates, 0);
    }

    #[test]
    fn record_update_counts_as_score_too() {
        let mut s = Stats::new();
        s.record_update(10);
        assert_eq!(s.score_computations, 1);
        assert_eq!(s.score_updates, 1);
        assert_eq!(s.user_ops, 10);
    }

    #[test]
    fn add_and_merge_agree() {
        let mut a = Stats::new();
        a.record_score(5);
        a.record_examined(3);
        let mut b = Stats::new();
        b.record_selection();
        b.record_update(2);

        let sum = a + b;
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(sum, merged);
        assert_eq!(sum.score_computations, 2);
        assert_eq!(sum.user_ops, 7);
        assert_eq!(sum.assignments_examined, 3);
        assert_eq!(sum.selections, 1);
        assert_eq!(sum.score_updates, 1);
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = Stats::new();
        s.record_score(7);
        let json = serde_json::to_string(&s).unwrap();
        let back: Stats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
