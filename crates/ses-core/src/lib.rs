//! # ses-core — the Social Event Scheduling substrate
//!
//! Core model and scoring machinery for the **SES problem** of
//! *"Attendance Maximization for Successful Social Event Planning"*
//! (Bikakis, Kalogeraki, Gunopulos — EDBT 2019).
//!
//! Given candidate events `E` (with locations and resource needs), candidate
//! time intervals `T`, third-party competing events `C`, and users `U` with
//! interest `µ` and social-activity probability `σ`, SES asks for a feasible
//! schedule of `k` event→interval assignments maximizing expected total
//! attendance under a Luce-choice model.
//!
//! This crate provides:
//!
//! * [`model`] — typed entities, interest/activity matrices (dense & sparse),
//!   and the immutable [`model::Instance`] (plus the paper's Figure-1
//!   [`model::running_example`]);
//! * [`schedule`] — feasible-by-construction [`schedule::Schedule`] enforcing
//!   the location and resource constraints of §2.1;
//! * [`scoring`] — the incremental [`scoring::ScoringEngine`] computing
//!   assignment scores (Eq. 4) in O(column) per score, and the independent
//!   [`scoring::utility`] evaluator for Ω(S) (Eq. 1–3);
//! * [`stats`] — counters reproducing the paper's evaluation metrics
//!   (score computations / user operations / assignments examined);
//! * [`parallel`] — deterministic multi-threading support: [`Threads`]
//!   resolution and the fixed-block reduction scheme that keeps parallel
//!   scores bit-identical to sequential ones;
//! * [`delta`] — dynamic-workload deltas: the [`delta::DeltaOp`] vocabulary
//!   (event/user churn, interest drift, constraint churn), in-place
//!   application with dense-id maintenance, and incremental competing-mass
//!   upkeep for warm-started schedulers;
//! * [`constraints`] — the scenario-constraint layer
//!   ([`constraints::ConstraintSet`]: venue capacities, conflict
//!   pairs/cliques, precedence edges) every candidate generator consults
//!   through [`schedule::Schedule::check_assign`];
//! * [`durable`] — crash-safe on-disk session state: checksummed snapshot
//!   containers written atomically, a CRC-framed append-only write-ahead
//!   log, and generation discovery/compaction (LSM-style snapshot + log).
//!
//! Algorithms (ALG, INC, HOR, HOR-I, baselines) live in `ses-algorithms`;
//! dataset generators in `ses-datasets`.
//!
//! ## Quick example
//!
//! ```
//! use ses_core::model::running_example;
//! use ses_core::scoring::ScoringEngine;
//! use ses_core::{EventId, IntervalId};
//!
//! let inst = running_example();
//! let mut engine = ScoringEngine::new(&inst);
//! let s = engine.assignment_score(EventId::new(3), IntervalId::new(1));
//! assert!((s - 0.66).abs() < 5e-3); // Figure 2, row ①: α_{e4}^{t2}
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod constraints;
pub mod delta;
pub mod durable;
pub mod error;
pub mod ids;
pub mod model;
pub mod parallel;
pub mod schedule;
pub mod scoring;
pub mod stats;

pub use constraints::ConstraintSet;
pub use delta::{DeltaEffect, DeltaOp, NewUser};
pub use error::{BuildError, DeltaError, ScheduleError, ServiceError};
pub use ids::{CompetingEventId, EventId, IntervalId, LocationId, UserId};
pub use model::Instance;
pub use parallel::Threads;
pub use schedule::{Assignment, Schedule};
pub use stats::Stats;
