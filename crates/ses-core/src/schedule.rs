//! Schedules: sets of event→interval assignments with feasibility tracking.
//!
//! A schedule `S` is feasible (§2.1) iff for every interval `t`:
//!
//! 1. no two events in `E_t(S)` share a location (**location constraint**);
//! 2. `Σ_{e ∈ E_t(S)} ξ_e ≤ θ` (**resources constraint**);
//!
//! and no event appears twice. [`Schedule`] maintains per-interval occupancy
//! so both checks are O(events in the interval).
//!
//! The *event duration* extension (§2.1) is supported transparently: an
//! event with `duration = d` assigned to `t` occupies intervals
//! `t .. t+d`, and both constraints are enforced on every spanned interval.
//! With the paper's `d = 1` this reduces exactly to the original model.

use crate::error::ScheduleError;
use crate::ids::{EventId, IntervalId};
use crate::model::Instance;
use serde::{Deserialize, Serialize};

/// One assignment `α_e^t`: candidate event `e` scheduled at interval `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Assignment {
    /// The scheduled event.
    pub event: EventId,
    /// The interval it is assigned to (its *starting* interval when the
    /// duration extension is in use).
    pub interval: IntervalId,
}

impl Assignment {
    /// Creates an assignment.
    #[inline]
    pub fn new(event: EventId, interval: IntervalId) -> Self {
        Self { event, interval }
    }
}

/// A feasible (by construction) set of assignments, recorded in selection
/// order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Per event: its assigned starting interval, if any.
    assigned: Vec<Option<IntervalId>>,
    /// Per interval: events occupying it (including spanning events).
    occupancy: Vec<Vec<EventId>>,
    /// Per interval: total required resources of occupying events.
    used_resources: Vec<f64>,
    /// Assignments in the order they were made.
    order: Vec<Assignment>,
}

impl Schedule {
    /// An empty schedule shaped for `inst`.
    pub fn new(inst: &Instance) -> Self {
        Self {
            assigned: vec![None; inst.num_events()],
            occupancy: vec![Vec::new(); inst.num_intervals()],
            used_resources: vec![0.0; inst.num_intervals()],
            order: Vec::new(),
        }
    }

    /// Number of assignments `|S|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the schedule is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Whether event `e` is scheduled (`e ∈ E(S)`).
    #[inline]
    pub fn is_scheduled(&self, e: EventId) -> bool {
        self.assigned[e.index()].is_some()
    }

    /// The starting interval of `e` under this schedule (`t_e(S)`).
    #[inline]
    pub fn interval_of(&self, e: EventId) -> Option<IntervalId> {
        self.assigned[e.index()]
    }

    /// Events occupying interval `t` (`E_t(S)`), in assignment order.
    #[inline]
    pub fn events_at(&self, t: IntervalId) -> &[EventId] {
        &self.occupancy[t.index()]
    }

    /// Total resources consumed in interval `t`.
    #[inline]
    pub fn used_resources(&self, t: IntervalId) -> f64 {
        self.used_resources[t.index()]
    }

    /// Assignments in selection order.
    #[inline]
    pub fn assignments(&self) -> &[Assignment] {
        &self.order
    }

    /// The intervals an event would span if assigned to `t`.
    fn span(inst: &Instance, e: EventId, t: IntervalId) -> std::ops::Range<usize> {
        let d = inst.events[e.index()].duration as usize;
        t.index()..t.index() + d
    }

    /// Checks whether assigning `e` at `t` keeps the schedule feasible
    /// (the paper's *valid assignment*: feasible and `e ∉ E(S)`).
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn check_assign(
        &self,
        inst: &Instance,
        e: EventId,
        t: IntervalId,
    ) -> Result<(), ScheduleError> {
        if self.is_scheduled(e) {
            return Err(ScheduleError::EventAlreadyScheduled(e));
        }
        let ev = &inst.events[e.index()];
        let span = Self::span(inst, e, t);
        if span.end > inst.num_intervals() {
            // A spanning event that runs off the calendar can never fit here;
            // surface it as a resource-style infeasibility on the interval.
            return Err(ScheduleError::ResourcesExceeded { event: e, interval: t });
        }
        for ti in span {
            for &other in &self.occupancy[ti] {
                if inst.events[other.index()].location == ev.location {
                    return Err(ScheduleError::LocationConflict {
                        event: e,
                        interval: IntervalId::new(ti),
                        occupant: other,
                    });
                }
            }
            if self.used_resources[ti] + ev.required_resources > inst.resources {
                return Err(ScheduleError::ResourcesExceeded {
                    event: e,
                    interval: IntervalId::new(ti),
                });
            }
        }
        // Scenario constraints last, so the §2.1 error precedence (and thus
        // every unconstrained code path) is unchanged; the empty set
        // short-circuits inside `check`.
        inst.constraints.check(inst, self, e, t)?;
        Ok(())
    }

    /// Convenience wrapper: `true` iff [`check_assign`](Self::check_assign)
    /// succeeds.
    #[inline]
    pub fn is_valid_assignment(&self, inst: &Instance, e: EventId, t: IntervalId) -> bool {
        self.check_assign(inst, e, t).is_ok()
    }

    /// Assigns `e` at `t`, enforcing feasibility.
    ///
    /// # Errors
    /// Propagates [`check_assign`](Self::check_assign) failures; on error the
    /// schedule is unchanged.
    pub fn assign(
        &mut self,
        inst: &Instance,
        e: EventId,
        t: IntervalId,
    ) -> Result<(), ScheduleError> {
        self.check_assign(inst, e, t)?;
        let ev = &inst.events[e.index()];
        for ti in Self::span(inst, e, t) {
            self.occupancy[ti].push(e);
            self.used_resources[ti] += ev.required_resources;
        }
        self.assigned[e.index()] = Some(t);
        self.order.push(Assignment::new(e, t));
        Ok(())
    }

    /// Removes event `e` from the schedule, returning the interval it was
    /// assigned to. Used by backtracking solvers.
    ///
    /// # Errors
    /// [`ScheduleError::EventNotScheduled`] if `e` is not scheduled.
    pub fn unassign(&mut self, inst: &Instance, e: EventId) -> Result<IntervalId, ScheduleError> {
        let t = self.assigned[e.index()].ok_or(ScheduleError::EventNotScheduled(e))?;
        let ev = &inst.events[e.index()];
        for ti in Self::span(inst, e, t) {
            self.occupancy[ti].retain(|&x| x != e);
            self.used_resources[ti] -= ev.required_resources;
        }
        self.assigned[e.index()] = None;
        // Keep `order` consistent: drop the matching record.
        if let Some(pos) = self.order.iter().position(|a| a.event == e) {
            self.order.remove(pos);
        }
        Ok(t)
    }

    /// Full re-check of the §2.1 constraints (and any scenario
    /// [`ConstraintSet`](crate::constraints::ConstraintSet) rules) from
    /// scratch — used by tests and debug assertions to cross-validate the
    /// incremental bookkeeping.
    pub fn verify_feasible(&self, inst: &Instance) -> Result<(), ScheduleError> {
        let mut fresh = Schedule::new(inst);
        for a in &self.order {
            fresh.check_assign(inst, a.event, a.interval)?;
            fresh
                .assign(inst, a.event, a.interval)
                .expect("check_assign passed, assign must succeed");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::running_example;

    #[test]
    fn assign_and_query() {
        let inst = running_example();
        let mut s = Schedule::new(&inst);
        s.assign(&inst, EventId::new(3), IntervalId::new(1)).unwrap();
        assert!(s.is_scheduled(EventId::new(3)));
        assert_eq!(s.interval_of(EventId::new(3)), Some(IntervalId::new(1)));
        assert_eq!(s.events_at(IntervalId::new(1)), &[EventId::new(3)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.used_resources(IntervalId::new(1)), 1.0);
    }

    #[test]
    fn double_assignment_rejected() {
        let inst = running_example();
        let mut s = Schedule::new(&inst);
        s.assign(&inst, EventId::new(0), IntervalId::new(0)).unwrap();
        let err = s.assign(&inst, EventId::new(0), IntervalId::new(1)).unwrap_err();
        assert_eq!(err, ScheduleError::EventAlreadyScheduled(EventId::new(0)));
    }

    #[test]
    fn location_conflict_detected() {
        let inst = running_example();
        let mut s = Schedule::new(&inst);
        // e1 and e2 both live on Stage 1.
        s.assign(&inst, EventId::new(0), IntervalId::new(0)).unwrap();
        let err = s.assign(&inst, EventId::new(1), IntervalId::new(0)).unwrap_err();
        assert!(matches!(err, ScheduleError::LocationConflict { .. }));
        // But a different interval is fine.
        s.assign(&inst, EventId::new(1), IntervalId::new(1)).unwrap();
    }

    #[test]
    fn resource_constraint_enforced() {
        let mut inst = running_example();
        inst.resources = 1.5; // each event needs 1.0
        let mut s = Schedule::new(&inst);
        s.assign(&inst, EventId::new(0), IntervalId::new(0)).unwrap();
        // Different location (e3 = Room A) so only resources can reject.
        let err = s.assign(&inst, EventId::new(2), IntervalId::new(0)).unwrap_err();
        assert!(matches!(err, ScheduleError::ResourcesExceeded { .. }));
    }

    #[test]
    fn unassign_restores_state() {
        let inst = running_example();
        let mut s = Schedule::new(&inst);
        s.assign(&inst, EventId::new(0), IntervalId::new(0)).unwrap();
        s.assign(&inst, EventId::new(2), IntervalId::new(0)).unwrap();
        let t = s.unassign(&inst, EventId::new(0)).unwrap();
        assert_eq!(t, IntervalId::new(0));
        assert!(!s.is_scheduled(EventId::new(0)));
        assert_eq!(s.events_at(IntervalId::new(0)), &[EventId::new(2)]);
        assert_eq!(s.len(), 1);
        // e2 (same location as e1) now fits again.
        s.assign(&inst, EventId::new(1), IntervalId::new(0)).unwrap();
    }

    #[test]
    fn unassign_missing_event_errors() {
        let inst = running_example();
        let mut s = Schedule::new(&inst);
        assert_eq!(
            s.unassign(&inst, EventId::new(0)).unwrap_err(),
            ScheduleError::EventNotScheduled(EventId::new(0))
        );
    }

    #[test]
    fn duration_spans_multiple_intervals() {
        let mut inst = running_example();
        inst.events[0].duration = 2; // e1 occupies t0 and t1
        let mut s = Schedule::new(&inst);
        s.assign(&inst, EventId::new(0), IntervalId::new(0)).unwrap();
        assert_eq!(s.events_at(IntervalId::new(0)), &[EventId::new(0)]);
        assert_eq!(s.events_at(IntervalId::new(1)), &[EventId::new(0)]);
        // e2 shares e1's location; it now conflicts in *both* intervals.
        assert!(s.check_assign(&inst, EventId::new(1), IntervalId::new(1)).is_err());
    }

    #[test]
    fn duration_running_off_calendar_rejected() {
        let mut inst = running_example();
        inst.events[0].duration = 2;
        let s = Schedule::new(&inst);
        // Starting at the last interval, a 2-slot event cannot fit.
        assert!(s.check_assign(&inst, EventId::new(0), IntervalId::new(1)).is_err());
    }

    #[test]
    fn verify_feasible_cross_checks() {
        let inst = running_example();
        let mut s = Schedule::new(&inst);
        s.assign(&inst, EventId::new(3), IntervalId::new(1)).unwrap();
        s.assign(&inst, EventId::new(0), IntervalId::new(0)).unwrap();
        s.assign(&inst, EventId::new(1), IntervalId::new(1)).unwrap();
        assert!(s.verify_feasible(&inst).is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let inst = running_example();
        let mut s = Schedule::new(&inst);
        s.assign(&inst, EventId::new(0), IntervalId::new(0)).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
