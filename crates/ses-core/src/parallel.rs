//! Deterministic parallel execution: thread-count resolution and the
//! fixed-block work partitioning shared by the scoring engine, the
//! schedulers, and the experiment harness.
//!
//! ## The determinism contract
//!
//! Everything parallel in this workspace is **bit-identical** to the
//! sequential reference, for every thread count. Two rules make that hold
//! (the differential suite `tests/parallel_equivalence.rs` enforces it):
//!
//! 1. **Fixed-block reductions.** Floating-point sums are never chunked "by
//!    thread"; they are chunked into fixed [`PAR_BLOCK`]-entry blocks whose
//!    boundaries depend only on the data length. Each block's partial sum is
//!    accumulated left-to-right, and block partials are combined in
//!    ascending block order. The *sequential* engine uses the same blocked
//!    order, so `f64` non-associativity never shows: 1, 2, or 64 threads
//!    produce the same bits. See DESIGN.md §2.
//! 2. **Ordered fan-out.** Work items (score-table rows, sweep rows) are
//!    indexed before the fan-out and results land in their input slot, so
//!    merges preserve the sequential order no matter which thread finished
//!    first.
//!
//! ## One level of parallelism at a time
//!
//! The vendored `mini-rayon` pool does not support nested `run` calls, so
//! layers never stack fan-outs: a scheduler that parallelizes candidate
//! generation scores each candidate sequentially
//! ([`ScoringEngine::peek_score`](crate::scoring::ScoringEngine::peek_score)),
//! and an experiment sweep that fans out table rows pins each scheduler run
//! to one thread. The blocked reduction keeps all combinations
//! bit-identical, so layers can choose whichever fan-out level pays.

use std::ops::Range;

/// Entries per summation block: the granularity of both the deterministic
/// reduction order and the parallel work split. Small enough that
/// bench-scale dense columns (a few thousand users) split into several
/// blocks, large enough that a block amortizes pool dispatch.
pub const PAR_BLOCK: usize = 512;

/// A resolved worker-thread count (always ≥ 1).
///
/// `Threads` is how a thread count travels from the CLI / environment down
/// through schedulers into the scoring engine. Resolution happens at
/// construction so every layer below deals in a concrete count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Threads(usize);

impl Threads {
    /// `n` threads; `0` means "machine width" (available parallelism).
    pub fn new(n: usize) -> Self {
        Self(if n == 0 { mini_rayon::available_parallelism() } else { n })
    }

    /// One thread — the sequential reference behaviour every parallel path
    /// is tested against.
    pub fn sequential() -> Self {
        Self(1)
    }

    /// The ambient default used by `Scheduler::run`: the `SES_THREADS`
    /// environment variable if set (`0` = machine width), otherwise
    /// sequential. CI runs the whole test suite under `SES_THREADS=1` and
    /// `SES_THREADS=4` — a thread-matrix differential test for free.
    pub fn from_env() -> Self {
        match std::env::var("SES_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) => Self::new(n),
                Err(_) => Self::sequential(),
            },
            Err(_) => Self::sequential(),
        }
    }

    /// The resolved count (≥ 1).
    pub fn get(self) -> usize {
        self.0
    }

    /// Whether this is the single-threaded reference mode.
    pub fn is_sequential(self) -> bool {
        self.0 == 1
    }
}

impl Default for Threads {
    fn default() -> Self {
        Self::from_env()
    }
}

impl std::fmt::Display for Threads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Applies `f(chunk_index, window)` to consecutive `chunk_size` windows of
/// `data` — in place and in index order when sequential, fanned across the
/// cached `mini-rayon` pool otherwise. Chunk boundaries are identical in
/// both modes, which is what lets callers treat the two paths as
/// interchangeable bit-for-bit.
///
/// # Panics
/// Panics if `chunk_size == 0`.
pub fn par_chunks_mut<T, F>(threads: Threads, data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    if threads.is_sequential() || data.len() <= chunk_size {
        for (i, window) in data.chunks_mut(chunk_size).enumerate() {
            f(i, window);
        }
    } else {
        mini_rayon::pool(threads.get()).for_each_chunk_mut(data, chunk_size, f);
    }
}

/// The fixed block boundaries of a `len`-entry column: `[0, PAR_BLOCK)`,
/// `[PAR_BLOCK, 2·PAR_BLOCK)`, … — the canonical reduction units of the
/// scoring engine. Returns the entry range of block `block`.
#[inline]
pub fn block_range(block: usize, len: usize) -> Range<usize> {
    let lo = block * PAR_BLOCK;
    lo..(lo + PAR_BLOCK).min(len)
}

/// Number of [`PAR_BLOCK`] blocks covering a `len`-entry column.
#[inline]
pub fn block_count(len: usize) -> usize {
    len.div_ceil(PAR_BLOCK)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_resolution() {
        assert_eq!(Threads::new(3).get(), 3);
        assert!(Threads::new(0).get() >= 1, "0 resolves to machine width");
        assert!(Threads::sequential().is_sequential());
        assert!(!Threads::new(2).is_sequential());
        assert_eq!(Threads::new(4).to_string(), "4");
    }

    #[test]
    fn block_geometry() {
        assert_eq!(block_count(0), 0);
        assert_eq!(block_count(1), 1);
        assert_eq!(block_count(PAR_BLOCK), 1);
        assert_eq!(block_count(PAR_BLOCK + 1), 2);
        assert_eq!(block_range(0, 10), 0..10);
        assert_eq!(block_range(1, PAR_BLOCK + 7), PAR_BLOCK..PAR_BLOCK + 7);
        // Blocks tile the column exactly.
        let len = 3 * PAR_BLOCK + 19;
        let mut covered = 0;
        for b in 0..block_count(len) {
            let r = block_range(b, len);
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, len);
    }

    #[test]
    fn par_chunks_mut_matches_sequential() {
        let mut seq: Vec<usize> = vec![0; 2000];
        let mut par: Vec<usize> = vec![0; 2000];
        par_chunks_mut(Threads::sequential(), &mut seq, 128, |i, w| {
            for x in w.iter_mut() {
                *x = i;
            }
        });
        par_chunks_mut(Threads::new(4), &mut par, 128, |i, w| {
            for x in w.iter_mut() {
                *x = i;
            }
        });
        assert_eq!(seq, par);
    }
}
