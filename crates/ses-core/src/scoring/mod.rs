//! Scoring: the incremental engine (Eq. 4 assignment scores) and the
//! independent utility evaluator (Eq. 1–3).

mod engine;
pub mod utility;

pub use engine::{gain, EngineProfile, ScoringEngine, StaticCaches, WarmCacheState};
