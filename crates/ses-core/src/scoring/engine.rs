//! The scoring engine: assignment scores (Eq. 4) over incrementally
//! maintained per-`(user, interval)` interest masses.
//!
//! For a user `u` and interval `t`, let
//!
//! * `C(u,t) = Σ_{c ∈ C_t} µ(u,c)` — competing mass (fixed), and
//! * `M(u,t) = Σ_{p ∈ E_t(S)} µ(u,p)` — scheduled mass (grows as the
//!   schedule fills).
//!
//! By Eq. 1–2 the expected attendance of interval `t`'s events from user `u`
//! is `σ(u,t) · M / (C + M)` (each scheduled event receives its
//! `µ`-proportional share, and the shares sum to `M / (C + M)`). The
//! assignment score of adding event `r` with interest `µ_r` (Eq. 4) is then
//!
//! ```text
//! score(r, t) = Σ_u w(u) · σ(u,t) · [ (M + µ_r)/(C + M + µ_r) − M/(C + M) ]
//! ```
//!
//! evaluated in O(column length of `r`) given the two mass tables. This is
//! exactly the per-score `|U|` cost the paper's complexity analysis charges
//! (dense interest iterates all users; sparse iterates non-zeros — users with
//! `µ_r = 0` contribute nothing to the bracket).
//!
//! **Monotonicity (Proposition 1's engine-level fact).** For fixed `µ_r > 0`
//! the bracket is strictly decreasing in `M` (and constant when `µ_r = 0`),
//! so scores only shrink as events are applied to an interval. Stale scores
//! are therefore upper bounds — the invariant INC and HOR-I prune with. This
//! is asserted by property tests in this module.
//!
//! ## Kernel memory layout (DESIGN.md §9)
//!
//! The user sweep is the system's hot loop, so its per-user state is
//! maintained as four interval-major tables updated only on `apply`/
//! `unapply` (which are ~`k` rare events per run, vs millions of sweeps):
//!
//! * `num_base[t·|U|+u]` — the residue-clamped scheduled mass `m̂`,
//! * `tot_mass[t·|U|+u]` — the Luce denominator `C + m̂`,
//! * `share[t·|U|+u]`    — the cached old share `m̂ / (C + m̂)`,
//! * `weight_act[t·|U|+u]` — the fused factor `w(u)·σ(u,t)` (built once).
//!
//! A sweep then performs **one division and one multiply per user**
//! (`wact · ((m̂+µ)/(tot+µ) − share)`) over four contiguous streams, instead
//! of two divisions, a residue branch, a strided `σ` lookup (the activity
//! matrix is user-major), and a `w·σ` recompute. Every cached value is the
//! bitwise result of the exact expression the pre-fusion kernel evaluated
//! inline, so scores are bit-identical to the unfused engine — the
//! differential suites and golden traces enforce this.

use crate::ids::{EventId, IntervalId};
use crate::model::{Instance, InterestMatrix};
use crate::parallel::{block_count, block_range, par_chunks_mut, Threads};
use crate::stats::Stats;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Incremental scorer for one instance. Create one per algorithm run.
#[derive(Debug, Clone)]
pub struct ScoringEngine<'a> {
    inst: &'a Instance,
    /// Competing mass `C(u,t)`, laid out `[t · |U| + u]` (interval-major so a
    /// score's user sweep is contiguous).
    comp_mass: Vec<f64>,
    /// Scheduled mass `M(u,t)`, same layout. The *raw* accumulator — the
    /// hot path never reads it; it exists so mass evolution under
    /// apply/unapply stays bit-exact while the clamped caches below feed
    /// the sweeps.
    sched_mass: Vec<f64>,
    /// Residue-clamped scheduled mass `m̂ = (M < MASS_SNAP ? 0 : M)`.
    num_base: Vec<f64>,
    /// Cached Luce denominator `C + m̂`.
    tot_mass: Vec<f64>,
    /// Cached old share `m̂ / (C + m̂)` (`0` when the denominator is zero).
    share: Vec<f64>,
    /// Fused per-`(u,t)` weight `w(u)·σ(u,t)` — precomputed at build so the
    /// sweep neither recomputes the product nor strides through the
    /// user-major activity matrix.
    weight_act: Vec<f64>,
    /// Per interval: `min_u C(u,t)` — a static lower bound on every user's
    /// Luce denominator, feeding [`score_bound`](Self::score_bound).
    comp_min: Vec<f64>,
    /// Per interval: `max_u w(u)·σ(u,t)`, same purpose.
    weight_act_max: Vec<f64>,
    /// Per interval: number of applied event-span occupancies. When a count
    /// returns to zero the interval's scheduled state is hard-reset to
    /// exact zeros, eliminating subtraction residue wholesale.
    sched_events: Vec<u32>,
    /// Per interval: number of users with non-zero raw scheduled mass —
    /// lets the empty-interval hard reset skip its row scan when every
    /// cell already subtracted back to exact zero (the common case).
    dirty_cells: Vec<u32>,
    /// Worker threads for user sweeps. Results are bit-identical for every
    /// count (fixed-block reduction; see the `parallel` module).
    threads: Threads,
    stats: Stats,
    /// Engine-construction wall time, folded into a profile if enabled.
    setup_ns: u64,
    /// Per-phase wall-clock attribution; `None` (the default) keeps the hot
    /// path free of timing calls.
    profile: Option<EngineProfile>,
}

/// The engine's instance-static kernel caches (fused `w·σ` weight table and
/// per-interval bound invariants), extractable via
/// [`ScoringEngine::into_warm_parts`] and re-entered via
/// [`ScoringEngine::from_warm_parts`] so repeated warm rebuilds (the stream
/// repairer's per-op engines) skip their `O(|U|·|T|)` construction. Opaque:
/// validity is the caller's contract (no user churn, no weight/activity/
/// competing-interest change since extraction).
#[derive(Debug, Clone)]
pub struct StaticCaches {
    weight_act: Vec<f64>,
    comp_min: Vec<f64>,
    weight_act_max: Vec<f64>,
}

/// Versioned serialized form of the engine's warm state — the
/// competing-mass table plus [`StaticCaches`] — with every field laid out
/// explicitly so durable snapshots never depend on in-memory layout.
/// Produced by [`StaticCaches::to_state`], consumed by
/// [`StaticCaches::from_state`]; round-trips bit for bit (the vendored
/// JSON codec prints shortest-round-trip floats and parses them back to
/// identical bits).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmCacheState {
    /// Layout version; readers reject anything they do not speak.
    pub version: u32,
    /// Competing-mass table `C(u,t)`, `[t·|U| + u]`.
    pub comp_mass: Vec<f64>,
    /// Fused `w(u)·σ(u,t)` weight table, `[t·|U| + u]`.
    pub weight_act: Vec<f64>,
    /// Per-interval minimum competing mass (bound-gate invariant).
    pub comp_min: Vec<f64>,
    /// Per-interval maximum fused weight (bound-gate invariant).
    pub weight_act_max: Vec<f64>,
}

impl WarmCacheState {
    /// The layout version this build writes.
    pub const VERSION: u32 = 1;
}

impl StaticCaches {
    /// Serializes these caches plus their companion competing-mass table
    /// into the explicit versioned layout.
    pub fn to_state(&self, comp_mass: &[f64]) -> WarmCacheState {
        WarmCacheState {
            version: WarmCacheState::VERSION,
            comp_mass: comp_mass.to_vec(),
            weight_act: self.weight_act.clone(),
            comp_min: self.comp_min.clone(),
            weight_act_max: self.weight_act_max.clone(),
        }
    }

    /// Rebuilds `(comp_mass, caches)` from a versioned state, validating
    /// the version and every shape against an instance of `users` ×
    /// `intervals`.
    ///
    /// # Errors
    /// A rendered description of the first failing check (unsupported
    /// version or shape mismatch) — callers wrap it in their own corrupt-
    /// state error type.
    pub fn from_state(
        state: WarmCacheState,
        users: usize,
        intervals: usize,
    ) -> Result<(Vec<f64>, Self), String> {
        if state.version != WarmCacheState::VERSION {
            return Err(format!(
                "warm-cache state version {} (this build speaks {})",
                state.version,
                WarmCacheState::VERSION
            ));
        }
        let cells = users * intervals;
        for (what, len, want) in [
            ("comp_mass", state.comp_mass.len(), cells),
            ("weight_act", state.weight_act.len(), cells),
            ("comp_min", state.comp_min.len(), intervals),
            ("weight_act_max", state.weight_act_max.len(), intervals),
        ] {
            if len != want {
                return Err(format!("warm-cache {what} has {len} cells, instance needs {want}"));
            }
        }
        Ok((
            state.comp_mass,
            Self {
                weight_act: state.weight_act,
                comp_min: state.comp_min,
                weight_act_max: state.weight_act_max,
            },
        ))
    }
}

/// Wall-clock attribution of an engine's life, split by phase — the payload
/// of `ses run --profile`. All values in nanoseconds of the engine's own
/// sequential work (parallel candidate-generation time is folded in by the
/// schedulers via [`ScoringEngine::add_scoring_time`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineProfile {
    /// Engine construction: competing-mass aggregation + cache builds.
    pub setup_ns: u64,
    /// Time inside score evaluations (initial scores and updates).
    pub score_ns: u64,
    /// Time inside `apply`/`unapply` mass maintenance.
    pub apply_ns: u64,
    /// Number of timed score evaluations.
    pub scores: u64,
    /// Number of timed apply/unapply calls.
    pub applies: u64,
}

impl<'a> ScoringEngine<'a> {
    /// Builds a sequential engine — the reference behaviour all parallel
    /// configurations are differentially tested against.
    pub fn new(inst: &'a Instance) -> Self {
        Self::with_threads(inst, Threads::sequential())
    }

    /// Builds the engine with `threads` workers for its user sweeps, and
    /// pre-aggregates the competing masses — the `O(|U|·|C|)` setup term of
    /// the paper's complexity analyses, fanned out by interval row — plus
    /// the fused kernel caches (weight table, Luce denominators, bound-gate
    /// invariants).
    pub fn with_threads(inst: &'a Instance, threads: Threads) -> Self {
        let start = Instant::now();
        let users = inst.num_users();
        let intervals = inst.num_intervals();
        let mut comp_mass = vec![0.0; users * intervals];
        if users > 0 {
            // Group competing events by interval (ascending id within each):
            // each `comp_mass` row then aggregates independently, and every
            // cell receives its additions in exactly the order the flat
            // sequential loop over `inst.competing` used — rows are
            // parallelism-safe *and* bit-identical.
            let mut by_interval: Vec<Vec<usize>> = vec![Vec::new(); intervals];
            for (ci, c) in inst.competing.iter().enumerate() {
                by_interval[c.interval.index()].push(ci);
            }
            par_chunks_mut(threads, &mut comp_mass, users, |t, row| {
                for &ci in &by_interval[t] {
                    for (u, mu) in inst.competing_interest.column(ci) {
                        row[u] += mu;
                    }
                }
            });
        }
        let setup_ops: u64 =
            (0..inst.competing.len()).map(|ci| inst.competing_interest.column_len(ci) as u64).sum();
        let mut stats = Stats::new();
        stats.user_ops += setup_ops;
        let mut engine = Self::assemble(inst, comp_mass, threads, stats);
        engine.setup_ns = start.elapsed().as_nanos() as u64;
        engine
    }

    /// Rebuilds an engine around a previously extracted competing-mass
    /// table (see [`into_comp_mass`](Self::into_comp_mass)), skipping the
    /// `O(|U|·|C|)` setup — the warm-start path of the dynamic stream
    /// scheduler, whose delta layer keeps the table bit-identical to a cold
    /// rebuild (`ses_core::delta::refresh_comp_mass`). Counters start at
    /// zero: a warm engine genuinely does not pay the setup term (it still
    /// rebuilds the `O(|U|·|T|)` kernel caches, which is `|C|/|T|`-fold
    /// cheaper).
    ///
    /// # Panics
    /// Panics if `comp_mass.len() != |U| · |T|` for `inst`.
    pub fn from_comp_mass(inst: &'a Instance, comp_mass: Vec<f64>, threads: Threads) -> Self {
        let start = Instant::now();
        let cells = inst.num_users() * inst.num_intervals();
        assert_eq!(comp_mass.len(), cells, "competing-mass table shape mismatch");
        let mut engine = Self::assemble(inst, comp_mass, threads, Stats::new());
        engine.setup_ns = start.elapsed().as_nanos() as u64;
        engine
    }

    /// Derives every kernel cache from a finished competing-mass table: the
    /// empty-schedule scheduled state (`m̂ = 0`, `tot = C + 0`, `share = 0`),
    /// the fused `w(u)·σ(u,t)` weight table, and the per-interval bound-gate
    /// invariants. All fills are elementwise or per-row sequential scans, so
    /// every thread count produces identical bits.
    fn assemble(inst: &'a Instance, comp_mass: Vec<f64>, threads: Threads, stats: Stats) -> Self {
        let caches = Self::build_static_caches(inst, &comp_mass, threads);
        Self::assemble_with(inst, comp_mass, caches, threads, stats)
    }

    /// Builds the instance-static caches: the fused weight table and the
    /// per-interval bound invariants.
    fn build_static_caches(inst: &Instance, comp_mass: &[f64], threads: Threads) -> StaticCaches {
        let users = inst.num_users();
        let intervals = inst.num_intervals();
        let cells = users * intervals;

        let mut weight_act = vec![0.0; cells];
        par_chunks_mut(threads, &mut weight_act, users.max(1), |t, row| {
            for (u, cell) in row.iter_mut().enumerate() {
                *cell = inst.user_weight(u) * inst.activity.value(u, t);
            }
        });

        let mut comp_min = vec![0.0; intervals];
        let mut weight_act_max = vec![0.0; intervals];
        for t in 0..intervals {
            let row = t * users;
            let mut cmin = f64::INFINITY;
            let mut wmax = 0.0f64;
            for u in 0..users {
                cmin = cmin.min(comp_mass[row + u]);
                wmax = wmax.max(weight_act[row + u]);
            }
            comp_min[t] = if users > 0 { cmin } else { 0.0 };
            weight_act_max[t] = wmax;
        }
        StaticCaches { weight_act, comp_min, weight_act_max }
    }

    /// Final assembly around a competing-mass table and (possibly reused)
    /// static caches: builds only the per-run scheduled state.
    fn assemble_with(
        inst: &'a Instance,
        comp_mass: Vec<f64>,
        caches: StaticCaches,
        threads: Threads,
        stats: Stats,
    ) -> Self {
        let users = inst.num_users();
        let intervals = inst.num_intervals();
        let cells = users * intervals;

        let mut tot_mass = vec![0.0; cells];
        par_chunks_mut(threads, &mut tot_mass, users.max(1), |t, row| {
            let comp = &comp_mass[t * users..(t + 1) * users];
            for (cell, &c) in row.iter_mut().zip(comp) {
                *cell = c + 0.0;
            }
        });

        Self {
            inst,
            comp_mass,
            sched_mass: vec![0.0; cells],
            num_base: vec![0.0; cells],
            tot_mass,
            share: vec![0.0; cells],
            weight_act: caches.weight_act,
            comp_min: caches.comp_min,
            weight_act_max: caches.weight_act_max,
            sched_events: vec![0; intervals],
            dirty_cells: vec![0; intervals],
            threads,
            stats,
            setup_ns: 0,
            profile: None,
        }
    }

    /// Consumes the engine, returning its competing-mass table for reuse by
    /// a later [`from_comp_mass`](Self::from_comp_mass) warm start.
    pub fn into_comp_mass(self) -> Vec<f64> {
        self.comp_mass
    }

    /// Consumes the engine, returning the competing-mass table *and* the
    /// instance-static kernel caches for reuse by
    /// [`from_warm_parts`](Self::from_warm_parts) — the fully warm start of
    /// the stream repairer. The caches depend only on the user weights, the
    /// activity matrix, and the competing masses, so they stay valid across
    /// any delta that does not churn users.
    pub fn into_warm_parts(self) -> (Vec<f64>, StaticCaches) {
        (
            self.comp_mass,
            StaticCaches {
                weight_act: self.weight_act,
                comp_min: self.comp_min,
                weight_act_max: self.weight_act_max,
            },
        )
    }

    /// [`from_comp_mass`](Self::from_comp_mass) that additionally reuses
    /// previously extracted static caches, skipping their `O(|U|·|T|)`
    /// rebuild. The caller owns the invalidation rule: the caches are only
    /// valid if no user joined/retired and no weight, activity, or
    /// competing-interest value changed since they were extracted.
    ///
    /// # Panics
    /// Panics on any shape mismatch against `inst`.
    pub fn from_warm_parts(
        inst: &'a Instance,
        comp_mass: Vec<f64>,
        caches: StaticCaches,
        threads: Threads,
    ) -> Self {
        let start = Instant::now();
        let cells = inst.num_users() * inst.num_intervals();
        assert_eq!(comp_mass.len(), cells, "competing-mass table shape mismatch");
        assert_eq!(caches.weight_act.len(), cells, "weight table shape mismatch");
        assert_eq!(caches.comp_min.len(), inst.num_intervals(), "bound cache shape mismatch");
        let mut engine = Self::assemble_with(inst, comp_mass, caches, threads, Stats::new());
        engine.setup_ns = start.elapsed().as_nanos() as u64;
        engine
    }

    /// The configured worker-thread count.
    #[inline]
    pub fn threads(&self) -> Threads {
        self.threads
    }

    /// The instance this engine scores.
    #[inline]
    pub fn instance(&self) -> &'a Instance {
        self.inst
    }

    /// Accumulated instrumentation counters.
    #[inline]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable access for algorithms that fold their own counters in.
    #[inline]
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// The scheduled mass `M(u, t)` currently applied.
    #[inline]
    pub fn scheduled_mass(&self, user: usize, t: IntervalId) -> f64 {
        self.sched_mass[t.index() * self.inst.num_users() + user]
    }

    /// The competing mass `C(u, t)`.
    #[inline]
    pub fn competing_mass(&self, user: usize, t: IntervalId) -> f64 {
        self.comp_mass[t.index() * self.inst.num_users() + user]
    }

    /// The cached Luce share `m̂ / (C + m̂)` of `(user, t)` — maintained on
    /// every `apply`/`unapply`; property tests assert it stays bitwise equal
    /// to a recompute from the mass accessors above.
    #[inline]
    pub fn cached_share(&self, user: usize, t: IntervalId) -> f64 {
        self.share[t.index() * self.inst.num_users() + user]
    }

    /// The partial gain of one fixed reduction block of `e`'s column in
    /// interval `ti`: entries at positions [`block_range`]`(block, len)`,
    /// accumulated left-to-right. Blocks are the atoms of the deterministic
    /// summation order (DESIGN.md §2) — every code path combines them in
    /// ascending block index, so thread count never changes a bit.
    ///
    /// This is the fused kernel: the layout enum is matched **once** per
    /// block (not per entry), and each user costs one division and one
    /// multiply over four contiguous `f64` streams plus the interest column.
    fn block_gain(&self, e: EventId, ti: usize, block: usize, len: usize) -> f64 {
        let users = self.inst.num_users();
        let base = ti * users;
        let num = &self.num_base[base..base + users];
        let tot = &self.tot_mass[base..base + users];
        let share = &self.share[base..base + users];
        let wact = &self.weight_act[base..base + users];
        let range = block_range(block, len);
        let mut total = 0.0;
        match &self.inst.event_interest {
            InterestMatrix::Dense(d) => {
                let first = range.start;
                let col = &d.column_slice(e.index())[range];
                for (i, &mu) in col.iter().enumerate() {
                    let u = first + i;
                    total += wact[u] * cached_gain(num[u], tot[u], share[u], mu);
                }
            }
            InterestMatrix::Sparse(s) => {
                let (us, vs) = s.column_slices(e.index());
                let (us, vs) = (&us[range.clone()], &vs[range]);
                for (&u, &mu) in us.iter().zip(vs) {
                    let u = u as usize;
                    total += wact[u] * cached_gain(num[u], tot[u], share[u], mu);
                }
            }
            InterestMatrix::Compressed(c) => {
                // Decodes the same (user, µ) sequence at the same positions
                // as the sparse arm — the addend order, and therefore every
                // output bit, is unchanged. Layout dispatch happens per
                // compressed block inside, not per entry.
                c.for_each_in_part(e.index(), range, |u, mu| {
                    total += wact[u] * cached_gain(num[u], tot[u], share[u], mu);
                });
            }
        }
        total
    }

    /// Marginal attendance gain of one spanned interval: the fixed-block
    /// reduction over `e`'s column, fanned across `threads` when the column
    /// spans several blocks.
    fn span_gain(&self, e: EventId, ti: usize, threads: Threads) -> f64 {
        let len = self.inst.event_interest.column_len(e.index());
        let n_blocks = block_count(len);
        if threads.is_sequential() || n_blocks < 2 {
            let mut total = 0.0;
            for b in 0..n_blocks {
                total += self.block_gain(e, ti, b, len);
            }
            total
        } else {
            let mut partials = vec![0.0f64; n_blocks];
            par_chunks_mut(threads, &mut partials, 1, |b, out| {
                out[0] = self.block_gain(e, ti, b, len);
            });
            // Combine in ascending block order — the same fold the
            // sequential branch performs.
            partials.iter().sum()
        }
    }

    fn score_impl(&self, e: EventId, t: IntervalId, threads: Threads) -> f64 {
        let d = self.inst.events[e.index()].duration as usize;
        debug_assert!(
            t.index() + d <= self.inst.num_intervals(),
            "scoring an assignment that runs off the calendar"
        );
        let mut s = 0.0;
        for ti in t.index()..t.index() + d {
            s += self.span_gain(e, ti, threads);
        }
        s
    }

    /// The paper's per-score cost of `e`: entries touched per user sweep
    /// times the spanned intervals — exactly what
    /// [`assignment_score`](Self::assignment_score) records in [`Stats`].
    #[inline]
    pub fn score_cost(&self, e: EventId) -> usize {
        self.inst.event_interest.column_len(e.index())
            * self.inst.events[e.index()].duration as usize
    }

    /// Computes the assignment score `α_e^t.S` (Eq. 4): the gain in expected
    /// attendance from adding `e` to interval `t` under the current masses.
    /// Counts as an initial score computation.
    pub fn assignment_score(&mut self, e: EventId, t: IntervalId) -> f64 {
        self.stats.record_score(self.score_cost(e));
        self.timed_score(e, t)
    }

    /// Same as [`assignment_score`](Self::assignment_score) but counted as a
    /// score *update* (a re-computation after a selection).
    pub fn assignment_score_update(&mut self, e: EventId, t: IntervalId) -> f64 {
        self.stats.record_update(self.score_cost(e));
        self.timed_score(e, t)
    }

    /// `score_impl` with optional per-phase timing — the profile branch is
    /// a `None` check in the common case.
    #[inline]
    fn timed_score(&mut self, e: EventId, t: IntervalId) -> f64 {
        match self.profile.is_some() {
            false => self.score_impl(e, t, self.threads),
            true => {
                let start = Instant::now();
                let s = self.score_impl(e, t, self.threads);
                let p = self.profile.as_mut().expect("checked above");
                p.score_ns += start.elapsed().as_nanos() as u64;
                p.scores += 1;
                s
            }
        }
    }

    /// A cheap **upper bound** on [`assignment_score`](Self::assignment_score)
    /// in `O(duration)` — no user sweep. Per spanned interval `t`:
    ///
    /// ```text
    /// Σ_u w·σ·gain ≤ (max_u w·σ) · Σ_u min(1, µ_u / C_min)
    ///              ≤ wact_max[t] · min(nnz(e), µ_sum(e) / C_min[t])
    /// ```
    ///
    /// using `gain(c, m, µ) ≤ µ/(c+m+µ) ≤ min(1, µ/C_min)` (the Luce gain is
    /// `µ·c/((c+m+µ)(c+m))` for `c+m > 0` and exactly `1` at `c+m = 0`), the
    /// cached interest column sum, and the static per-interval invariants.
    /// A `1 + 1e-9` inflation dominates float rounding, keeping the bound
    /// sound, so a candidate whose bound is *strictly* below the current Φ
    /// can never be the selected argmax — the bound-first gate's soundness
    /// argument (DESIGN.md §9).
    pub fn score_bound(&self, e: EventId, t: IntervalId) -> f64 {
        let nnz = self.inst.event_interest.column_len(e.index()) as f64;
        let mu_sum = self.inst.event_interest.column_sum(e.index());
        let d = self.inst.events[e.index()].duration as usize;
        let mut bound = 0.0;
        for ti in t.index()..t.index() + d {
            let cap =
                if self.comp_min[ti] > 0.0 { (mu_sum / self.comp_min[ti]).min(nnz) } else { nnz };
            bound += self.weight_act_max[ti] * cap;
        }
        bound * (1.0 + 1e-9)
    }

    /// The assignment score without touching [`Stats`] and without
    /// engine-level fan-out — always evaluated on the calling thread.
    ///
    /// This is the building block for schedulers that parallelize *candidate
    /// generation* instead (one thread per score-table row): the pool does
    /// not nest, and the fixed-block reduction makes the result bit-identical
    /// to [`assignment_score`](Self::assignment_score) anyway. Callers replay
    /// the `Stats` bookkeeping afterwards via [`score_cost`](Self::score_cost)
    /// + [`Stats::record_score`].
    pub fn peek_score(&self, e: EventId, t: IntervalId) -> f64 {
        self.score_impl(e, t, Threads::sequential())
    }

    /// Applies a selected assignment: folds `e`'s interest into the scheduled
    /// mass of every interval it spans and refreshes the fused caches of the
    /// touched cells. Subsequent scores for those intervals reflect the new
    /// competition.
    pub fn apply(&mut self, e: EventId, t: IntervalId) {
        self.stats.record_selection();
        self.timed_mass_delta(e, t, 1.0);
    }

    /// Reverts [`apply`](Self::apply) — used by backtracking solvers.
    pub fn unapply(&mut self, e: EventId, t: IntervalId) {
        self.timed_mass_delta(e, t, -1.0);
    }

    #[inline]
    fn timed_mass_delta(&mut self, e: EventId, t: IntervalId, sign: f64) {
        match self.profile.is_some() {
            false => self.mass_delta(e, t, sign),
            true => {
                let start = Instant::now();
                self.mass_delta(e, t, sign);
                let p = self.profile.as_mut().expect("checked above");
                p.apply_ns += start.elapsed().as_nanos() as u64;
                p.applies += 1;
            }
        }
    }

    /// Re-derives the fused caches of one `(u, t)` cell from its raw masses —
    /// the single definition of the cache invariant: `num_base` is the
    /// clamped mass, `tot_mass` the Luce denominator, `share` the old share,
    /// each computed by exactly the expression the pre-fusion kernel
    /// evaluated per score (so cached and inline values are bit-equal).
    #[inline]
    fn refresh_cell(&mut self, idx: usize) {
        let m = self.sched_mass[idx];
        let m_hat = if m < MASS_SNAP { 0.0 } else { m };
        let tot = self.comp_mass[idx] + m_hat;
        self.num_base[idx] = m_hat;
        self.tot_mass[idx] = tot;
        self.share[idx] = if tot > 0.0 { m_hat / tot } else { 0.0 };
    }

    fn mass_delta(&mut self, e: EventId, t: IntervalId, sign: f64) {
        let inst = self.inst;
        let users = inst.num_users();
        let d = inst.events[e.index()].duration as usize;
        for ti in t.index()..t.index() + d {
            let base = ti * users;
            if sign >= 0.0 {
                self.sched_events[ti] += 1;
                for (u, mu) in inst.event_interest.column(e.index()) {
                    let idx = base + u;
                    let was_zero = self.sched_mass[idx] == 0.0;
                    self.sched_mass[idx] += mu;
                    if was_zero && self.sched_mass[idx] != 0.0 {
                        self.dirty_cells[ti] += 1;
                    }
                    self.refresh_cell(idx);
                }
            } else {
                // Subtractive update (backtracking): snap float residue to
                // exact zero. The Luce share m/(c+m) is *discontinuous* at
                // m = 0 when c = 0 — a ±1e-16 leftover would otherwise flip
                // a user's share from 0 to 1 and silently corrupt every
                // subsequent score (found by a property test via the exact
                // solver losing to greedy).
                for (u, mu) in inst.event_interest.column(e.index()) {
                    let idx = base + u;
                    let was_zero = self.sched_mass[idx] == 0.0;
                    let cell = &mut self.sched_mass[idx];
                    *cell -= mu;
                    if cell.abs() < MASS_SNAP {
                        *cell = 0.0;
                    }
                    let is_zero = self.sched_mass[idx] == 0.0;
                    match (was_zero, is_zero) {
                        (true, false) => self.dirty_cells[ti] += 1,
                        (false, true) => self.dirty_cells[ti] -= 1,
                        _ => {}
                    }
                    self.refresh_cell(idx);
                }
                self.sched_events[ti] = self.sched_events[ti].saturating_sub(1);
                if self.sched_events[ti] == 0 && self.dirty_cells[ti] > 0 {
                    // The interval's scheduled event set is empty again but
                    // some cell kept a residue the per-cell snap missed:
                    // hard-reset the row to exact zeros, wiping the float
                    // residue of *every* event that ever visited the
                    // interval. The dirty-cell counter makes this scan-free
                    // in the common case (all cells subtracted back to
                    // exact zero already).
                    for idx in base..base + users {
                        if self.sched_mass[idx] != 0.0 {
                            self.sched_mass[idx] = 0.0;
                            self.refresh_cell(idx);
                        }
                    }
                    self.dirty_cells[ti] = 0;
                }
            }
        }
    }

    /// Switches on per-phase wall-clock attribution (engine construction
    /// time is captured retroactively). Costs one branch per score/apply.
    pub fn enable_profiling(&mut self) {
        self.profile = Some(EngineProfile { setup_ns: self.setup_ns, ..Default::default() });
    }

    /// Takes the accumulated profile, if profiling was enabled.
    pub fn take_profile(&mut self) -> Option<EngineProfile> {
        self.profile.take()
    }

    /// Folds externally measured scoring time (parallel candidate
    /// generation, which runs through [`peek_score`](Self::peek_score) on
    /// pool workers) into the profile, if enabled.
    pub fn add_scoring_time(&mut self, ns: u64, scores: u64) {
        if let Some(p) = self.profile.as_mut() {
            p.score_ns += ns;
            p.scores += scores;
        }
    }
}

/// Residue threshold for subtractive mass updates: far below any meaningful
/// interest value, far above accumulated f64 noise.
const MASS_SNAP: f64 = 1e-9;

/// The per-user Luce-share gain of adding interest `mu` on top of competing
/// mass `c` and scheduled mass `m`:
/// `(m + mu)/(c + m + mu) − m/(c + m)`, with the empty-denominator cases
/// resolved by Eq. 1's semantics (no offer ⇒ zero attendance).
///
/// Robustness: `m` below [`MASS_SNAP`] (including tiny negatives left by
/// subtractive engine updates) is treated as exactly zero — the share is
/// discontinuous at `m = 0` when `c = 0`, so residue must not leak through.
#[inline]
pub fn gain(c: f64, m: f64, mu: f64) -> f64 {
    let m = if m < MASS_SNAP { 0.0 } else { m };
    let old_denom = c + m;
    let new_denom = old_denom + mu;
    if new_denom <= 0.0 {
        return 0.0;
    }
    let new_share = (m + mu) / new_denom;
    let old_share = if old_denom > 0.0 { m / old_denom } else { 0.0 };
    new_share - old_share
}

/// [`gain`] restated over the engine's fused caches: `num = m̂` (clamped
/// mass), `tot = c + m̂`, `share = m̂/(c + m̂)`. One division and no residue
/// branch per call; bit-identical to `gain(c, m, µ)` because every operand
/// is the cached result of exactly the expression `gain` computes inline
/// (same operands, same operation order — see `refresh_cell`).
#[inline]
fn cached_gain(num: f64, tot: f64, share: f64, mu: f64) -> f64 {
    let den = tot + mu;
    if den <= 0.0 {
        return 0.0;
    }
    (num + mu) / den - share
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::running_example;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 5e-3
    }

    /// Initial scores of Figure 2, row ①.
    #[test]
    fn running_example_initial_scores() {
        let inst = running_example();
        let mut eng = ScoringEngine::new(&inst);
        let expect = [
            // (event, interval, paper score)
            (0, 0, 0.59),
            (1, 0, 0.52),
            (2, 0, 0.10),
            (3, 0, 0.64),
            (0, 1, 0.53),
            (1, 1, 0.57),
            (2, 1, 0.09),
            (3, 1, 0.66),
        ];
        for (e, t, want) in expect {
            let got = eng.assignment_score(EventId::new(e), IntervalId::new(t));
            assert!(approx(got, want), "score(e{e}, t{t}) = {got}, paper says {want}");
        }
        assert_eq!(eng.stats().score_computations, 8);
        // Dense interest: every score sweeps both users.
        assert_eq!(eng.stats().user_ops - 4 /* competing setup */, 16);
    }

    /// Updated scores of Figure 2 rows ② and ③ after each greedy selection.
    ///
    /// Note: the paper prints `α_{e1}^{t2} = 0.34` in row ②, which equals the
    /// *standalone* attendance ω′ of e1 given e4 — not the Eq.-4 marginal
    /// gain (≈ 0.13). Every other updated cell (e2: 0.16, e3: 0.03, e3@t1:
    /// 0.05) matches the marginal-gain reading, and only that reading makes
    /// utility telescope (Eq. 3), so we treat 0.34 as a typo and assert 0.13.
    #[test]
    fn running_example_updated_scores() {
        let inst = running_example();
        let mut eng = ScoringEngine::new(&inst);
        // Selection ①: e4 @ t2.
        eng.apply(EventId::new(3), IntervalId::new(1));
        assert!(approx(eng.assignment_score_update(EventId::new(0), IntervalId::new(1)), 0.13));
        assert!(approx(eng.assignment_score_update(EventId::new(1), IntervalId::new(1)), 0.16));
        assert!(approx(eng.assignment_score_update(EventId::new(2), IntervalId::new(1)), 0.03));
        // Selection ②: e1 @ t1.
        eng.apply(EventId::new(0), IntervalId::new(0));
        assert!(approx(eng.assignment_score_update(EventId::new(2), IntervalId::new(0)), 0.05));
        // t1 scores for e2 unchanged? e2 shares e1's location so it is
        // *invalid* at t1 now — but the score function itself still evaluates.
        assert_eq!(eng.stats().score_updates, 4);
    }

    #[test]
    fn scores_shrink_as_interval_fills() {
        let inst = running_example();
        let mut eng = ScoringEngine::new(&inst);
        let before = eng.assignment_score(EventId::new(1), IntervalId::new(1));
        eng.apply(EventId::new(3), IntervalId::new(1));
        let after = eng.assignment_score(EventId::new(1), IntervalId::new(1));
        assert!(after < before, "stale score must upper-bound refreshed score");
    }

    #[test]
    fn apply_unapply_roundtrip() {
        let inst = running_example();
        let mut eng = ScoringEngine::new(&inst);
        let before = eng.assignment_score(EventId::new(0), IntervalId::new(1));
        eng.apply(EventId::new(3), IntervalId::new(1));
        eng.unapply(EventId::new(3), IntervalId::new(1));
        let after = eng.assignment_score(EventId::new(0), IntervalId::new(1));
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn gain_edge_cases() {
        // Nothing on offer, nothing added.
        assert_eq!(gain(0.0, 0.0, 0.0), 0.0);
        // First event in an empty, competition-free interval captures all.
        assert_eq!(gain(0.0, 0.0, 0.5), 1.0);
        // Zero-interest event adds nothing.
        assert_eq!(gain(0.3, 0.4, 0.0), 0.0);
        // Strictly positive gain when mu > 0.
        assert!(gain(0.3, 0.4, 0.2) > 0.0);
    }

    #[test]
    fn gain_monotone_decreasing_in_scheduled_mass() {
        let (c, mu) = (0.4, 0.6);
        let mut last = f64::INFINITY;
        for i in 0..20 {
            let m = i as f64 * 0.25;
            let g = gain(c, m, mu);
            assert!(g <= last + 1e-15, "gain must not increase with m");
            last = g;
        }
    }

    #[test]
    fn weighted_users_scale_scores() {
        let mut inst = running_example();
        let mut eng = ScoringEngine::new(&inst);
        let unweighted = eng.assignment_score(EventId::new(0), IntervalId::new(0));
        inst.user_weights = Some(vec![2.0, 2.0]);
        let mut eng2 = ScoringEngine::new(&inst);
        let weighted = eng2.assignment_score(EventId::new(0), IntervalId::new(0));
        assert!((weighted - 2.0 * unweighted).abs() < 1e-12);
    }

    #[test]
    fn duration_event_scores_both_spans() {
        let mut inst = running_example();
        inst.events[2].duration = 2; // e3 spans t1..t2
        let mut eng = ScoringEngine::new(&inst);
        let spanning = eng.assignment_score(EventId::new(2), IntervalId::new(0));
        inst.events[2].duration = 1;
        let mut eng2 = ScoringEngine::new(&inst);
        let at_t1 = eng2.assignment_score(EventId::new(2), IntervalId::new(0));
        let at_t2 = eng2.assignment_score(EventId::new(2), IntervalId::new(1));
        assert!((spanning - (at_t1 + at_t2)).abs() < 1e-12);
    }

    #[test]
    fn sparse_and_dense_scores_agree() {
        let inst = running_example();
        let mut sparse_inst = inst.clone();
        sparse_inst.event_interest = inst.event_interest.to_sparse().into();
        sparse_inst.competing_interest = inst.competing_interest.to_sparse().into();

        let mut de = ScoringEngine::new(&inst);
        let mut se = ScoringEngine::new(&sparse_inst);
        for e in 0..4 {
            for t in 0..2 {
                let d = de.assignment_score(EventId::new(e), IntervalId::new(t));
                let s = se.assignment_score(EventId::new(e), IntervalId::new(t));
                assert!((d - s).abs() < 1e-12, "e{e} t{t}: dense {d} vs sparse {s}");
            }
        }
        // Sparse does strictly less per-user work (e3 has one non-zero).
        assert!(se.stats().user_ops < de.stats().user_ops);
    }
}

#[cfg(test)]
mod residue_regression {
    use super::*;
    use crate::ids::LocationId;
    use crate::model::{running_example, ActivityMatrix, DenseInterest, Event, InstanceBuilder};

    /// Regression for the backtracking-residue bug: after an apply/unapply
    /// cycle, a user with zero competing mass must still grant the full
    /// first-event gain (the Luce share is discontinuous at m = 0, so even
    /// a 1e-16 residue used to swallow it entirely).
    #[test]
    fn unapply_residue_does_not_flip_empty_interval_share() {
        let mut b = InstanceBuilder::new();
        b.add_event(Event::new(LocationId::new(0), 1.0));
        b.add_event(Event::new(LocationId::new(1), 1.0));
        b.add_intervals(1);
        // One user, no competing events: µ values chosen so that the
        // subtraction leaves a float residue (0.1 has no exact binary rep).
        let inst = b
            .event_interest(DenseInterest::from_raw(2, 1, vec![0.1, 0.7]).unwrap())
            .activity(ActivityMatrix::constant(1, 1, 1.0))
            .resources(10.0)
            .build()
            .unwrap();

        let mut eng = ScoringEngine::new(&inst);
        let clean = eng.assignment_score(EventId::new(1), IntervalId::new(0));
        assert_eq!(clean, 1.0, "first event in an empty, competition-free slot captures σ");

        // Churn the masses: repeated apply/unapply of the other event.
        for _ in 0..7 {
            eng.apply(EventId::new(0), IntervalId::new(0));
            eng.unapply(EventId::new(0), IntervalId::new(0));
        }
        let after = eng.assignment_score(EventId::new(1), IntervalId::new(0));
        assert_eq!(after, clean, "residue corrupted the empty-interval share");
        assert_eq!(eng.scheduled_mass(0, IntervalId::new(0)), 0.0, "mass must snap to zero");
    }

    /// `gain` itself is robust to residue-scale inputs, positive or negative.
    #[test]
    fn gain_clamps_residue_mass() {
        assert_eq!(gain(0.0, 1e-16, 0.5), 1.0);
        assert_eq!(gain(0.0, -1e-16, 0.5), 1.0);
        assert_eq!(gain(0.0, 0.0, 0.5), 1.0);
        // Real (non-residue) masses are untouched.
        assert!(gain(0.0, 0.5, 0.5) < 1.0);
    }

    /// When an interval's scheduled event set empties, the whole scheduled
    /// state is hard-reset: every user's mass, clamped mass, and share go
    /// back to *exact* zero — not "small residue below the snap threshold" —
    /// and subsequent scores are bitwise equal to a fresh engine's.
    #[test]
    fn empty_interval_hard_resets_to_exact_zero() {
        let mut b = InstanceBuilder::new();
        for l in 0..3 {
            b.add_event(Event::new(LocationId::new(l), 1.0));
        }
        b.add_intervals(1);
        let inst = b
            .event_interest(
                DenseInterest::from_raw(3, 2, vec![0.1, 0.3, 0.7, 0.2, 0.9, 0.6]).unwrap(),
            )
            .activity(ActivityMatrix::constant(2, 1, 1.0))
            .resources(10.0)
            .build()
            .unwrap();

        let mut eng = ScoringEngine::new(&inst);
        let t = IntervalId::new(0);
        let fresh = eng.assignment_score(EventId::new(2), t);
        // Stack two events, then remove them in the opposite order.
        eng.apply(EventId::new(0), t);
        eng.apply(EventId::new(1), t);
        eng.unapply(EventId::new(0), t);
        eng.unapply(EventId::new(1), t);
        for u in 0..2 {
            assert_eq!(eng.scheduled_mass(u, t).to_bits(), 0.0f64.to_bits(), "user {u} mass");
            assert_eq!(eng.cached_share(u, t).to_bits(), 0.0f64.to_bits(), "user {u} share");
        }
        let again = eng.assignment_score(EventId::new(2), t);
        assert_eq!(fresh.to_bits(), again.to_bits(), "post-reset score must equal a cold score");
    }

    /// The cached share table tracks `m̂/(C+m̂)` bitwise through apply/unapply
    /// churn (the deeper randomized version lives in `tests/properties.rs`).
    #[test]
    fn cached_share_matches_recompute() {
        let inst = running_example();
        let mut eng = ScoringEngine::new(&inst);
        eng.apply(EventId::new(3), IntervalId::new(1));
        eng.apply(EventId::new(0), IntervalId::new(0));
        eng.unapply(EventId::new(3), IntervalId::new(1));
        eng.apply(EventId::new(1), IntervalId::new(1));
        for t in 0..2 {
            let interval = IntervalId::new(t);
            for u in 0..2 {
                let m = eng.scheduled_mass(u, interval);
                let c = eng.competing_mass(u, interval);
                let m_hat = if m < MASS_SNAP { 0.0 } else { m };
                let tot = c + m_hat;
                let want = if tot > 0.0 { m_hat / tot } else { 0.0 };
                assert_eq!(
                    eng.cached_share(u, interval).to_bits(),
                    want.to_bits(),
                    "share(u{u}, t{t})"
                );
            }
        }
    }

    /// `score_bound` upper-bounds the true assignment score at every
    /// schedule state it is consulted in.
    #[test]
    fn score_bound_dominates_score() {
        let inst = running_example();
        let mut eng = ScoringEngine::new(&inst);
        let check = |eng: &mut ScoringEngine<'_>, label: &str| {
            for e in 0..4 {
                for t in 0..2 {
                    let (event, interval) = (EventId::new(e), IntervalId::new(t));
                    let score = eng.assignment_score(event, interval);
                    let bound = eng.score_bound(event, interval);
                    assert!(bound >= score, "{label}: bound {bound} < score {score} (e{e}, t{t})");
                }
            }
        };
        check(&mut eng, "empty");
        eng.apply(EventId::new(3), IntervalId::new(1));
        check(&mut eng, "one applied");
        eng.apply(EventId::new(0), IntervalId::new(0));
        check(&mut eng, "two applied");
    }

    /// Profiling attributes wall time per phase without perturbing results.
    #[test]
    fn profiling_records_phases() {
        let inst = running_example();
        let mut plain = ScoringEngine::new(&inst);
        let mut profiled = ScoringEngine::new(&inst);
        profiled.enable_profiling();
        for (e, t) in [(0, 0), (3, 1)] {
            let a = plain.assignment_score(EventId::new(e), IntervalId::new(t));
            let b = profiled.assignment_score(EventId::new(e), IntervalId::new(t));
            assert_eq!(a.to_bits(), b.to_bits());
        }
        profiled.apply(EventId::new(3), IntervalId::new(1));
        let p = profiled.take_profile().expect("profiling was enabled");
        assert_eq!(p.scores, 2);
        assert_eq!(p.applies, 1);
        assert!(profiled.take_profile().is_none(), "take drains the profile");
    }
}
