//! The scoring engine: assignment scores (Eq. 4) over incrementally
//! maintained per-`(user, interval)` interest masses.
//!
//! For a user `u` and interval `t`, let
//!
//! * `C(u,t) = Σ_{c ∈ C_t} µ(u,c)` — competing mass (fixed), and
//! * `M(u,t) = Σ_{p ∈ E_t(S)} µ(u,p)` — scheduled mass (grows as the
//!   schedule fills).
//!
//! By Eq. 1–2 the expected attendance of interval `t`'s events from user `u`
//! is `σ(u,t) · M / (C + M)` (each scheduled event receives its
//! `µ`-proportional share, and the shares sum to `M / (C + M)`). The
//! assignment score of adding event `r` with interest `µ_r` (Eq. 4) is then
//!
//! ```text
//! score(r, t) = Σ_u w(u) · σ(u,t) · [ (M + µ_r)/(C + M + µ_r) − M/(C + M) ]
//! ```
//!
//! evaluated in O(column length of `r`) given the two mass tables. This is
//! exactly the per-score `|U|` cost the paper's complexity analysis charges
//! (dense interest iterates all users; sparse iterates non-zeros — users with
//! `µ_r = 0` contribute nothing to the bracket).
//!
//! **Monotonicity (Proposition 1's engine-level fact).** For fixed `µ_r > 0`
//! the bracket is strictly decreasing in `M` (and constant when `µ_r = 0`),
//! so scores only shrink as events are applied to an interval. Stale scores
//! are therefore upper bounds — the invariant INC and HOR-I prune with. This
//! is asserted by property tests in this module.

use crate::ids::{EventId, IntervalId};
use crate::model::{Instance, InterestMatrix};
use crate::parallel::{block_count, block_range, par_chunks_mut, Threads};
use crate::stats::Stats;

/// Incremental scorer for one instance. Create one per algorithm run.
#[derive(Debug, Clone)]
pub struct ScoringEngine<'a> {
    inst: &'a Instance,
    /// Competing mass `C(u,t)`, laid out `[t · |U| + u]` (interval-major so a
    /// score's user sweep is contiguous).
    comp_mass: Vec<f64>,
    /// Scheduled mass `M(u,t)`, same layout.
    sched_mass: Vec<f64>,
    /// Worker threads for user sweeps. Results are bit-identical for every
    /// count (fixed-block reduction; see the `parallel` module).
    threads: Threads,
    stats: Stats,
}

impl<'a> ScoringEngine<'a> {
    /// Builds a sequential engine — the reference behaviour all parallel
    /// configurations are differentially tested against.
    pub fn new(inst: &'a Instance) -> Self {
        Self::with_threads(inst, Threads::sequential())
    }

    /// Builds the engine with `threads` workers for its user sweeps, and
    /// pre-aggregates the competing masses — the `O(|U|·|C|)` setup term of
    /// the paper's complexity analyses, fanned out by interval row.
    pub fn with_threads(inst: &'a Instance, threads: Threads) -> Self {
        let users = inst.num_users();
        let intervals = inst.num_intervals();
        let mut comp_mass = vec![0.0; users * intervals];
        if users > 0 {
            // Group competing events by interval (ascending id within each):
            // each `comp_mass` row then aggregates independently, and every
            // cell receives its additions in exactly the order the flat
            // sequential loop over `inst.competing` used — rows are
            // parallelism-safe *and* bit-identical.
            let mut by_interval: Vec<Vec<usize>> = vec![Vec::new(); intervals];
            for (ci, c) in inst.competing.iter().enumerate() {
                by_interval[c.interval.index()].push(ci);
            }
            par_chunks_mut(threads, &mut comp_mass, users, |t, row| {
                for &ci in &by_interval[t] {
                    for (u, mu) in inst.competing_interest.column(ci) {
                        row[u] += mu;
                    }
                }
            });
        }
        let setup_ops: u64 =
            (0..inst.competing.len()).map(|ci| inst.competing_interest.column_len(ci) as u64).sum();
        let mut stats = Stats::new();
        stats.user_ops += setup_ops;
        Self { inst, comp_mass, sched_mass: vec![0.0; users * intervals], threads, stats }
    }

    /// Rebuilds an engine around a previously extracted competing-mass
    /// table (see [`into_comp_mass`](Self::into_comp_mass)), skipping the
    /// `O(|U|·|C|)` setup — the warm-start path of the dynamic stream
    /// scheduler, whose delta layer keeps the table bit-identical to a cold
    /// rebuild (`ses_core::delta::refresh_comp_mass`). Counters start at
    /// zero: a warm engine genuinely does not pay the setup term.
    ///
    /// # Panics
    /// Panics if `comp_mass.len() != |U| · |T|` for `inst`.
    pub fn from_comp_mass(inst: &'a Instance, comp_mass: Vec<f64>, threads: Threads) -> Self {
        let cells = inst.num_users() * inst.num_intervals();
        assert_eq!(comp_mass.len(), cells, "competing-mass table shape mismatch");
        Self { inst, comp_mass, sched_mass: vec![0.0; cells], threads, stats: Stats::new() }
    }

    /// Consumes the engine, returning its competing-mass table for reuse by
    /// a later [`from_comp_mass`](Self::from_comp_mass) warm start.
    pub fn into_comp_mass(self) -> Vec<f64> {
        self.comp_mass
    }

    /// The configured worker-thread count.
    #[inline]
    pub fn threads(&self) -> Threads {
        self.threads
    }

    /// The instance this engine scores.
    #[inline]
    pub fn instance(&self) -> &'a Instance {
        self.inst
    }

    /// Accumulated instrumentation counters.
    #[inline]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable access for algorithms that fold their own counters in.
    #[inline]
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// The scheduled mass `M(u, t)` currently applied.
    #[inline]
    pub fn scheduled_mass(&self, user: usize, t: IntervalId) -> f64 {
        self.sched_mass[t.index() * self.inst.num_users() + user]
    }

    /// The competing mass `C(u, t)`.
    #[inline]
    pub fn competing_mass(&self, user: usize, t: IntervalId) -> f64 {
        self.comp_mass[t.index() * self.inst.num_users() + user]
    }

    /// The partial gain of one fixed reduction block of `e`'s column in
    /// interval `ti`: entries at positions [`block_range`]`(block, len)`,
    /// accumulated left-to-right. Blocks are the atoms of the deterministic
    /// summation order (DESIGN.md §2) — every code path combines them in
    /// ascending block index, so thread count never changes a bit.
    fn block_gain(&self, e: EventId, ti: usize, block: usize, len: usize) -> f64 {
        let users = self.inst.num_users();
        let base = ti * users;
        let comp = &self.comp_mass[base..base + users];
        let sched = &self.sched_mass[base..base + users];
        let interest: &InterestMatrix = &self.inst.event_interest;
        let range = block_range(block, len);
        let mut total = 0.0;
        match &self.inst.user_weights {
            None => {
                for (u, mu) in interest.column_part(e.index(), range) {
                    total += self.inst.activity.value(u, ti) * gain(comp[u], sched[u], mu);
                }
            }
            Some(w) => {
                for (u, mu) in interest.column_part(e.index(), range) {
                    total += w[u] * self.inst.activity.value(u, ti) * gain(comp[u], sched[u], mu);
                }
            }
        }
        total
    }

    /// Marginal attendance gain of one spanned interval: the fixed-block
    /// reduction over `e`'s column, fanned across `threads` when the column
    /// spans several blocks.
    fn span_gain(&self, e: EventId, ti: usize, threads: Threads) -> f64 {
        let len = self.inst.event_interest.column_len(e.index());
        let n_blocks = block_count(len);
        if threads.is_sequential() || n_blocks < 2 {
            let mut total = 0.0;
            for b in 0..n_blocks {
                total += self.block_gain(e, ti, b, len);
            }
            total
        } else {
            let mut partials = vec![0.0f64; n_blocks];
            par_chunks_mut(threads, &mut partials, 1, |b, out| {
                out[0] = self.block_gain(e, ti, b, len);
            });
            // Combine in ascending block order — the same fold the
            // sequential branch performs.
            partials.iter().sum()
        }
    }

    fn score_impl(&self, e: EventId, t: IntervalId, threads: Threads) -> f64 {
        let d = self.inst.events[e.index()].duration as usize;
        debug_assert!(
            t.index() + d <= self.inst.num_intervals(),
            "scoring an assignment that runs off the calendar"
        );
        let mut s = 0.0;
        for ti in t.index()..t.index() + d {
            s += self.span_gain(e, ti, threads);
        }
        s
    }

    /// The paper's per-score cost of `e`: entries touched per user sweep
    /// times the spanned intervals — exactly what
    /// [`assignment_score`](Self::assignment_score) records in [`Stats`].
    #[inline]
    pub fn score_cost(&self, e: EventId) -> usize {
        self.inst.event_interest.column_len(e.index())
            * self.inst.events[e.index()].duration as usize
    }

    /// Computes the assignment score `α_e^t.S` (Eq. 4): the gain in expected
    /// attendance from adding `e` to interval `t` under the current masses.
    /// Counts as an initial score computation.
    pub fn assignment_score(&mut self, e: EventId, t: IntervalId) -> f64 {
        self.stats.record_score(self.score_cost(e));
        self.score_impl(e, t, self.threads)
    }

    /// Same as [`assignment_score`](Self::assignment_score) but counted as a
    /// score *update* (a re-computation after a selection).
    pub fn assignment_score_update(&mut self, e: EventId, t: IntervalId) -> f64 {
        self.stats.record_update(self.score_cost(e));
        self.score_impl(e, t, self.threads)
    }

    /// The assignment score without touching [`Stats`] and without
    /// engine-level fan-out — always evaluated on the calling thread.
    ///
    /// This is the building block for schedulers that parallelize *candidate
    /// generation* instead (one thread per score-table row): the pool does
    /// not nest, and the fixed-block reduction makes the result bit-identical
    /// to [`assignment_score`](Self::assignment_score) anyway. Callers replay
    /// the `Stats` bookkeeping afterwards via [`score_cost`](Self::score_cost)
    /// + [`Stats::record_score`].
    pub fn peek_score(&self, e: EventId, t: IntervalId) -> f64 {
        self.score_impl(e, t, Threads::sequential())
    }

    /// Applies a selected assignment: folds `e`'s interest into the scheduled
    /// mass of every interval it spans. Subsequent scores for those intervals
    /// reflect the new competition.
    pub fn apply(&mut self, e: EventId, t: IntervalId) {
        self.stats.record_selection();
        self.mass_delta(e, t, 1.0);
    }

    /// Reverts [`apply`](Self::apply) — used by backtracking solvers.
    pub fn unapply(&mut self, e: EventId, t: IntervalId) {
        self.mass_delta(e, t, -1.0);
    }

    fn mass_delta(&mut self, e: EventId, t: IntervalId, sign: f64) {
        let users = self.inst.num_users();
        let d = self.inst.events[e.index()].duration as usize;
        for ti in t.index()..t.index() + d {
            let base = ti * users;
            if sign >= 0.0 {
                for (u, mu) in self.inst.event_interest.column(e.index()) {
                    self.sched_mass[base + u] += mu;
                }
            } else {
                // Subtractive update (backtracking): snap float residue to
                // exact zero. The Luce share m/(c+m) is *discontinuous* at
                // m = 0 when c = 0 — a ±1e-16 leftover would otherwise flip
                // a user's share from 0 to 1 and silently corrupt every
                // subsequent score (found by a property test via the exact
                // solver losing to greedy).
                for (u, mu) in self.inst.event_interest.column(e.index()) {
                    let cell = &mut self.sched_mass[base + u];
                    *cell -= mu;
                    if cell.abs() < MASS_SNAP {
                        *cell = 0.0;
                    }
                }
            }
        }
    }
}

/// Residue threshold for subtractive mass updates: far below any meaningful
/// interest value, far above accumulated f64 noise.
const MASS_SNAP: f64 = 1e-9;

/// The per-user Luce-share gain of adding interest `mu` on top of competing
/// mass `c` and scheduled mass `m`:
/// `(m + mu)/(c + m + mu) − m/(c + m)`, with the empty-denominator cases
/// resolved by Eq. 1's semantics (no offer ⇒ zero attendance).
///
/// Robustness: `m` below [`MASS_SNAP`] (including tiny negatives left by
/// subtractive engine updates) is treated as exactly zero — the share is
/// discontinuous at `m = 0` when `c = 0`, so residue must not leak through.
#[inline]
pub fn gain(c: f64, m: f64, mu: f64) -> f64 {
    let m = if m < MASS_SNAP { 0.0 } else { m };
    let old_denom = c + m;
    let new_denom = old_denom + mu;
    if new_denom <= 0.0 {
        return 0.0;
    }
    let new_share = (m + mu) / new_denom;
    let old_share = if old_denom > 0.0 { m / old_denom } else { 0.0 };
    new_share - old_share
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::running_example;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 5e-3
    }

    /// Initial scores of Figure 2, row ①.
    #[test]
    fn running_example_initial_scores() {
        let inst = running_example();
        let mut eng = ScoringEngine::new(&inst);
        let expect = [
            // (event, interval, paper score)
            (0, 0, 0.59),
            (1, 0, 0.52),
            (2, 0, 0.10),
            (3, 0, 0.64),
            (0, 1, 0.53),
            (1, 1, 0.57),
            (2, 1, 0.09),
            (3, 1, 0.66),
        ];
        for (e, t, want) in expect {
            let got = eng.assignment_score(EventId::new(e), IntervalId::new(t));
            assert!(approx(got, want), "score(e{e}, t{t}) = {got}, paper says {want}");
        }
        assert_eq!(eng.stats().score_computations, 8);
        // Dense interest: every score sweeps both users.
        assert_eq!(eng.stats().user_ops - 4 /* competing setup */, 16);
    }

    /// Updated scores of Figure 2 rows ② and ③ after each greedy selection.
    ///
    /// Note: the paper prints `α_{e1}^{t2} = 0.34` in row ②, which equals the
    /// *standalone* attendance ω′ of e1 given e4 — not the Eq.-4 marginal
    /// gain (≈ 0.13). Every other updated cell (e2: 0.16, e3: 0.03, e3@t1:
    /// 0.05) matches the marginal-gain reading, and only that reading makes
    /// utility telescope (Eq. 3), so we treat 0.34 as a typo and assert 0.13.
    #[test]
    fn running_example_updated_scores() {
        let inst = running_example();
        let mut eng = ScoringEngine::new(&inst);
        // Selection ①: e4 @ t2.
        eng.apply(EventId::new(3), IntervalId::new(1));
        assert!(approx(eng.assignment_score_update(EventId::new(0), IntervalId::new(1)), 0.13));
        assert!(approx(eng.assignment_score_update(EventId::new(1), IntervalId::new(1)), 0.16));
        assert!(approx(eng.assignment_score_update(EventId::new(2), IntervalId::new(1)), 0.03));
        // Selection ②: e1 @ t1.
        eng.apply(EventId::new(0), IntervalId::new(0));
        assert!(approx(eng.assignment_score_update(EventId::new(2), IntervalId::new(0)), 0.05));
        // t1 scores for e2 unchanged? e2 shares e1's location so it is
        // *invalid* at t1 now — but the score function itself still evaluates.
        assert_eq!(eng.stats().score_updates, 4);
    }

    #[test]
    fn scores_shrink_as_interval_fills() {
        let inst = running_example();
        let mut eng = ScoringEngine::new(&inst);
        let before = eng.assignment_score(EventId::new(1), IntervalId::new(1));
        eng.apply(EventId::new(3), IntervalId::new(1));
        let after = eng.assignment_score(EventId::new(1), IntervalId::new(1));
        assert!(after < before, "stale score must upper-bound refreshed score");
    }

    #[test]
    fn apply_unapply_roundtrip() {
        let inst = running_example();
        let mut eng = ScoringEngine::new(&inst);
        let before = eng.assignment_score(EventId::new(0), IntervalId::new(1));
        eng.apply(EventId::new(3), IntervalId::new(1));
        eng.unapply(EventId::new(3), IntervalId::new(1));
        let after = eng.assignment_score(EventId::new(0), IntervalId::new(1));
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn gain_edge_cases() {
        // Nothing on offer, nothing added.
        assert_eq!(gain(0.0, 0.0, 0.0), 0.0);
        // First event in an empty, competition-free interval captures all.
        assert_eq!(gain(0.0, 0.0, 0.5), 1.0);
        // Zero-interest event adds nothing.
        assert_eq!(gain(0.3, 0.4, 0.0), 0.0);
        // Strictly positive gain when mu > 0.
        assert!(gain(0.3, 0.4, 0.2) > 0.0);
    }

    #[test]
    fn gain_monotone_decreasing_in_scheduled_mass() {
        let (c, mu) = (0.4, 0.6);
        let mut last = f64::INFINITY;
        for i in 0..20 {
            let m = i as f64 * 0.25;
            let g = gain(c, m, mu);
            assert!(g <= last + 1e-15, "gain must not increase with m");
            last = g;
        }
    }

    #[test]
    fn weighted_users_scale_scores() {
        let mut inst = running_example();
        let mut eng = ScoringEngine::new(&inst);
        let unweighted = eng.assignment_score(EventId::new(0), IntervalId::new(0));
        inst.user_weights = Some(vec![2.0, 2.0]);
        let mut eng2 = ScoringEngine::new(&inst);
        let weighted = eng2.assignment_score(EventId::new(0), IntervalId::new(0));
        assert!((weighted - 2.0 * unweighted).abs() < 1e-12);
    }

    #[test]
    fn duration_event_scores_both_spans() {
        let mut inst = running_example();
        inst.events[2].duration = 2; // e3 spans t1..t2
        let mut eng = ScoringEngine::new(&inst);
        let spanning = eng.assignment_score(EventId::new(2), IntervalId::new(0));
        inst.events[2].duration = 1;
        let mut eng2 = ScoringEngine::new(&inst);
        let at_t1 = eng2.assignment_score(EventId::new(2), IntervalId::new(0));
        let at_t2 = eng2.assignment_score(EventId::new(2), IntervalId::new(1));
        assert!((spanning - (at_t1 + at_t2)).abs() < 1e-12);
    }

    #[test]
    fn sparse_and_dense_scores_agree() {
        let inst = running_example();
        let mut sparse_inst = inst.clone();
        sparse_inst.event_interest = inst.event_interest.to_sparse().into();
        sparse_inst.competing_interest = inst.competing_interest.to_sparse().into();

        let mut de = ScoringEngine::new(&inst);
        let mut se = ScoringEngine::new(&sparse_inst);
        for e in 0..4 {
            for t in 0..2 {
                let d = de.assignment_score(EventId::new(e), IntervalId::new(t));
                let s = se.assignment_score(EventId::new(e), IntervalId::new(t));
                assert!((d - s).abs() < 1e-12, "e{e} t{t}: dense {d} vs sparse {s}");
            }
        }
        // Sparse does strictly less per-user work (e3 has one non-zero).
        assert!(se.stats().user_ops < de.stats().user_ops);
    }
}

#[cfg(test)]
mod residue_regression {
    use super::*;
    use crate::ids::LocationId;
    use crate::model::{ActivityMatrix, DenseInterest, Event, InstanceBuilder};

    /// Regression for the backtracking-residue bug: after an apply/unapply
    /// cycle, a user with zero competing mass must still grant the full
    /// first-event gain (the Luce share is discontinuous at m = 0, so even
    /// a 1e-16 residue used to swallow it entirely).
    #[test]
    fn unapply_residue_does_not_flip_empty_interval_share() {
        let mut b = InstanceBuilder::new();
        b.add_event(Event::new(LocationId::new(0), 1.0));
        b.add_event(Event::new(LocationId::new(1), 1.0));
        b.add_intervals(1);
        // One user, no competing events: µ values chosen so that the
        // subtraction leaves a float residue (0.1 has no exact binary rep).
        let inst = b
            .event_interest(DenseInterest::from_raw(2, 1, vec![0.1, 0.7]).unwrap())
            .activity(ActivityMatrix::constant(1, 1, 1.0))
            .resources(10.0)
            .build()
            .unwrap();

        let mut eng = ScoringEngine::new(&inst);
        let clean = eng.assignment_score(EventId::new(1), IntervalId::new(0));
        assert_eq!(clean, 1.0, "first event in an empty, competition-free slot captures σ");

        // Churn the masses: repeated apply/unapply of the other event.
        for _ in 0..7 {
            eng.apply(EventId::new(0), IntervalId::new(0));
            eng.unapply(EventId::new(0), IntervalId::new(0));
        }
        let after = eng.assignment_score(EventId::new(1), IntervalId::new(0));
        assert_eq!(after, clean, "residue corrupted the empty-interval share");
        assert_eq!(eng.scheduled_mass(0, IntervalId::new(0)), 0.0, "mass must snap to zero");
    }

    /// `gain` itself is robust to residue-scale inputs, positive or negative.
    #[test]
    fn gain_clamps_residue_mass() {
        assert_eq!(gain(0.0, 1e-16, 0.5), 1.0);
        assert_eq!(gain(0.0, -1e-16, 0.5), 1.0);
        assert_eq!(gain(0.0, 0.0, 0.5), 1.0);
        // Real (non-residue) masses are untouched.
        assert!(gain(0.0, 0.5, 0.5) < 1.0);
    }
}
