//! From-scratch evaluation of Eq. 1–3: attendance probabilities, expected
//! attendance, and total utility Ω(S).
//!
//! This module deliberately shares no state with [`ScoringEngine`]; it is the
//! independent reference implementation used to cross-validate the engine
//! (total utility must equal the telescoped sum of selected assignment
//! scores) and to report final utilities.
//!
//! [`ScoringEngine`]: crate::scoring::ScoringEngine

use crate::ids::{EventId, IntervalId};
use crate::model::Instance;
use crate::schedule::Schedule;

/// The Luce denominator for user `u` at interval `t` under schedule `s`:
/// `Σ_{c ∈ C_t} µ(u,c) + Σ_{p ∈ E_t(S)} µ(u,p)`.
fn luce_denominator(inst: &Instance, s: &Schedule, user: usize, t: IntervalId) -> f64 {
    let mut d = 0.0;
    for c in inst.competing_at(t) {
        d += inst.competing_interest.value(c.index(), user);
    }
    for &p in s.events_at(t) {
        d += inst.event_interest.value(p.index(), user);
    }
    d
}

/// Probability `ρ_{u,e}^t` (Eq. 1) that user `u` attends event `e` during
/// interval `t`, given the events scheduled alongside it.
///
/// Returns 0 when the denominator is empty (nothing on offer).
///
/// # Panics
/// Panics (debug) if `e` is not actually occupying `t` under `s`.
pub fn attendance_probability(
    inst: &Instance,
    s: &Schedule,
    user: usize,
    e: EventId,
    t: IntervalId,
) -> f64 {
    debug_assert!(s.events_at(t).contains(&e), "ρ is defined for events scheduled at the interval");
    let denom = luce_denominator(inst, s, user, t);
    if denom <= 0.0 {
        return 0.0;
    }
    inst.activity.value(user, t.index()) * inst.event_interest.value(e.index(), user) / denom
}

/// Expected attendance `ω_e^t` (Eq. 2) of scheduled event `e`, summed over
/// all users (weighted if user weights are configured) and over every
/// interval the event spans.
///
/// Returns 0 if `e` is not scheduled by `s`.
pub fn expected_attendance(inst: &Instance, s: &Schedule, e: EventId) -> f64 {
    let Some(start) = s.interval_of(e) else {
        return 0.0;
    };
    let d = inst.events[e.index()].duration as usize;
    let mut total = 0.0;
    for ti in start.index()..start.index() + d {
        let t = IntervalId::new(ti);
        for user in 0..inst.num_users() {
            total += inst.user_weight(user) * attendance_probability(inst, s, user, e, t);
        }
    }
    total
}

/// Total utility `Ω(S)` (Eq. 3): expected attendance summed over all
/// scheduled events.
pub fn total_utility(inst: &Instance, s: &Schedule) -> f64 {
    s.assignments().iter().map(|a| expected_attendance(inst, s, a.event)).sum()
}

/// Profit-oriented utility (the §2.1 "profit-oriented SES" extension):
/// `Σ_e (ω_e · revenue_per_attendee − cost_e)` over scheduled events.
pub fn total_profit(inst: &Instance, s: &Schedule, revenue_per_attendee: f64) -> f64 {
    s.assignments()
        .iter()
        .map(|a| {
            expected_attendance(inst, s, a.event) * revenue_per_attendee
                - inst.events[a.event.index()].cost
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::running_example;
    use crate::scoring::ScoringEngine;

    fn paper_schedule(inst: &Instance) -> Schedule {
        // Examples 2–5: {e4@t2, e1@t1, e2@t2}.
        let mut s = Schedule::new(inst);
        s.assign(inst, EventId::new(3), IntervalId::new(1)).unwrap();
        s.assign(inst, EventId::new(0), IntervalId::new(0)).unwrap();
        s.assign(inst, EventId::new(1), IntervalId::new(1)).unwrap();
        s
    }

    #[test]
    fn running_example_total_utility() {
        let inst = running_example();
        let s = paper_schedule(&inst);
        // 0.6564 (e4 selection) + 0.5902 (e1) + 0.1607 (e2), hand-computed.
        let omega = total_utility(&inst, &s);
        assert!((omega - 1.4073).abs() < 5e-4, "Ω = {omega}");
    }

    #[test]
    fn expected_attendance_of_unscheduled_event_is_zero() {
        let inst = running_example();
        let s = Schedule::new(&inst);
        assert_eq!(expected_attendance(&inst, &s, EventId::new(0)), 0.0);
    }

    #[test]
    fn attendance_probability_matches_hand_computation() {
        let inst = running_example();
        let mut s = Schedule::new(&inst);
        s.assign(&inst, EventId::new(0), IntervalId::new(0)).unwrap();
        // u1 at t1: σ = 0.8, µ(e1) = 0.9, C = µ(c1) = 0.8.
        let rho = attendance_probability(&inst, &s, 0, EventId::new(0), IntervalId::new(0));
        assert!((rho - 0.8 * 0.9 / 1.7).abs() < 1e-12);
    }

    /// Eq. 4 telescopes: Ω(S) equals the sum of each selected assignment's
    /// score *at selection time*. This ties the incremental engine to the
    /// from-scratch evaluator.
    #[test]
    fn utility_telescopes_from_assignment_scores() {
        let inst = running_example();
        let mut eng = ScoringEngine::new(&inst);
        let picks = [(3usize, 1usize), (0, 0), (1, 1)];
        let mut sum = 0.0;
        let mut s = Schedule::new(&inst);
        for (e, t) in picks {
            sum += eng.assignment_score(EventId::new(e), IntervalId::new(t));
            eng.apply(EventId::new(e), IntervalId::new(t));
            s.assign(&inst, EventId::new(e), IntervalId::new(t)).unwrap();
        }
        let omega = total_utility(&inst, &s);
        assert!((omega - sum).abs() < 1e-9, "telescoping: Ω = {omega}, Σ scores = {sum}");
    }

    #[test]
    fn profit_subtracts_costs() {
        let mut inst = running_example();
        inst.events[3].cost = 0.5;
        let s = paper_schedule(&inst);
        let omega = total_utility(&inst, &s);
        let profit = total_profit(&inst, &s, 1.0);
        assert!((profit - (omega - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn weights_scale_utility() {
        let mut inst = running_example();
        let s = paper_schedule(&inst);
        let base = total_utility(&inst, &s);
        inst.user_weights = Some(vec![3.0, 3.0]);
        let s2 = paper_schedule(&inst);
        let weighted = total_utility(&inst, &s2);
        assert!((weighted - 3.0 * base).abs() < 1e-9);
    }

    #[test]
    fn empty_schedule_zero_utility() {
        let inst = running_example();
        assert_eq!(total_utility(&inst, &Schedule::new(&inst)), 0.0);
    }
}
