//! Strongly-typed identifiers for the entities of the SES problem.
//!
//! All identifiers are dense indices into the owning [`Instance`]'s entity
//! vectors (`u32` internally, exposed as `usize` at use sites). Using
//! newtypes instead of bare integers prevents the classic bug family of
//! passing an event index where an interval index is expected — a real risk
//! in this problem where almost every loop is a nested `(event, interval,
//! user)` traversal.
//!
//! [`Instance`]: crate::model::Instance

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a dense index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                Self(u32::try_from(index).expect(concat!($tag, " index overflows u32")))
            }

            /// Returns the dense index as `usize`, for direct vector indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(index: usize) -> Self {
                Self::new(index)
            }
        }
    };
}

define_id!(
    /// Identifier of a candidate event `e ∈ E`.
    EventId,
    "e"
);
define_id!(
    /// Identifier of a candidate time interval `t ∈ T`.
    IntervalId,
    "t"
);
define_id!(
    /// Identifier of a user `u ∈ U`.
    UserId,
    "u"
);
define_id!(
    /// Identifier of a location (stage/room) hosting candidate events.
    LocationId,
    "loc"
);
define_id!(
    /// Identifier of a competing event `c ∈ C` (scheduled by third parties).
    CompetingEventId,
    "c"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let e = EventId::new(42);
        assert_eq!(e.index(), 42);
        assert_eq!(e, EventId(42));
    }

    #[test]
    fn display_uses_tag() {
        assert_eq!(EventId::new(3).to_string(), "e3");
        assert_eq!(IntervalId::new(1).to_string(), "t1");
        assert_eq!(UserId::new(0).to_string(), "u0");
        assert_eq!(LocationId::new(7).to_string(), "loc7");
        assert_eq!(CompetingEventId::new(9).to_string(), "c9");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(EventId::new(1) < EventId::new(2));
        let mut v = vec![IntervalId::new(2), IntervalId::new(0), IntervalId::new(1)];
        v.sort();
        assert_eq!(v, vec![IntervalId::new(0), IntervalId::new(1), IntervalId::new(2)]);
    }

    #[test]
    fn from_usize() {
        let t: IntervalId = 5usize.into();
        assert_eq!(t.index(), 5);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflow_panics() {
        let _ = EventId::new(usize::MAX);
    }
}
