//! Error types for instance construction and schedule manipulation.

use crate::ids::{EventId, IntervalId};
use std::fmt;

/// Errors raised while building or validating an [`Instance`].
///
/// [`Instance`]: crate::model::Instance
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// An interest value was outside `[0, 1]`.
    InterestOutOfRange {
        /// Offending value.
        value: f64,
        /// Human-readable description of where it was found.
        context: String,
    },
    /// An activity probability was outside `[0, 1]`.
    ActivityOutOfRange {
        /// Offending value.
        value: f64,
        /// Human-readable description of where it was found.
        context: String,
    },
    /// A competing event referenced an interval that does not exist.
    DanglingCompetingInterval {
        /// The out-of-range interval index.
        interval: usize,
        /// Number of intervals in the instance.
        num_intervals: usize,
    },
    /// An event's required resources exceed the organizer's total resources,
    /// so the event can never be scheduled.
    EventNeverSchedulable {
        /// The impossible event.
        event: EventId,
        /// Resources the event requires.
        required: f64,
        /// Resources the organizer has per interval.
        available: f64,
    },
    /// A dimension (users/events/intervals) was zero where it must not be.
    EmptyDimension(&'static str),
    /// A matrix had the wrong number of entries for the declared dimensions.
    DimensionMismatch {
        /// What was being validated.
        what: &'static str,
        /// Expected number of entries.
        expected: usize,
        /// Actual number of entries.
        actual: usize,
    },
    /// A resource quantity (θ or ξ) was negative or non-finite.
    InvalidResource {
        /// Offending value.
        value: f64,
        /// Human-readable description of where it was found.
        context: String,
    },
    /// A user weight was negative or non-finite.
    InvalidWeight {
        /// Offending value.
        value: f64,
        /// The user it belongs to.
        user: usize,
    },
    /// A venue capacity was zero (use no entry to leave a venue
    /// unconstrained).
    ZeroVenueCapacity {
        /// The location with the zero budget.
        location: crate::ids::LocationId,
    },
    /// Two capacity entries target the same location.
    DuplicateVenueCapacity {
        /// The doubly-constrained location.
        location: crate::ids::LocationId,
    },
    /// A constraint referenced an event that does not exist.
    DanglingConstraintEvent {
        /// The dangling event id.
        event: EventId,
        /// Number of candidate events in the instance.
        num_events: usize,
        /// Which constraint family referenced it.
        context: &'static str,
    },
    /// A conflict pair or precedence edge referenced an event on both sides.
    SelfReferentialConstraint {
        /// The twice-referenced event.
        event: EventId,
        /// Which constraint family it appeared in.
        context: &'static str,
    },
    /// The precedence relation contains a cycle, so no schedule placing all
    /// its events could ever be feasible.
    PrecedenceCycle {
        /// An event on the cycle.
        event: EventId,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InterestOutOfRange { value, context } => {
                write!(f, "interest value {value} out of [0,1] ({context})")
            }
            Self::ActivityOutOfRange { value, context } => {
                write!(f, "activity probability {value} out of [0,1] ({context})")
            }
            Self::DanglingCompetingInterval { interval, num_intervals } => write!(
                f,
                "competing event references interval {interval} but instance has {num_intervals}"
            ),
            Self::EventNeverSchedulable { event, required, available } => write!(
                f,
                "{event} requires {required} resources but only {available} are available"
            ),
            Self::EmptyDimension(what) => write!(f, "instance has no {what}"),
            Self::DimensionMismatch { what, expected, actual } => {
                write!(f, "{what}: expected {expected} entries, got {actual}")
            }
            Self::InvalidResource { value, context } => {
                write!(f, "invalid resource quantity {value} ({context})")
            }
            Self::InvalidWeight { value, user } => {
                write!(f, "invalid weight {value} for user {user}")
            }
            Self::ZeroVenueCapacity { location } => {
                write!(f, "venue capacity for {location} is zero (omit the entry instead)")
            }
            Self::DuplicateVenueCapacity { location } => {
                write!(f, "duplicate venue-capacity entry for {location}")
            }
            Self::DanglingConstraintEvent { event, num_events, context } => {
                write!(f, "{context} references {event} but instance has {num_events} events")
            }
            Self::SelfReferentialConstraint { event, context } => {
                write!(f, "{context} references {event} on both sides")
            }
            Self::PrecedenceCycle { event } => {
                write!(f, "precedence constraints form a cycle through {event}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Errors raised while mutating a [`Schedule`].
///
/// [`Schedule`]: crate::schedule::Schedule
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// The event is already scheduled (schedules map each event at most once).
    EventAlreadyScheduled(EventId),
    /// Assigning the event would place two events with the same location in
    /// the same interval (location constraint of §2.1).
    LocationConflict {
        /// Event being assigned.
        event: EventId,
        /// Interval of the attempted assignment.
        interval: IntervalId,
        /// Already-scheduled event occupying the same location.
        occupant: EventId,
    },
    /// Assigning the event would exceed the organizer's resources θ in the
    /// interval (resources constraint of §2.1).
    ResourcesExceeded {
        /// Event being assigned.
        event: EventId,
        /// Interval of the attempted assignment.
        interval: IntervalId,
    },
    /// The event is not currently scheduled (for removal operations).
    EventNotScheduled(EventId),
    /// Assigning the event would push its venue past the per-venue
    /// slot budget of the instance's [`ConstraintSet`].
    ///
    /// [`ConstraintSet`]: crate::constraints::ConstraintSet
    VenueCapacityExceeded {
        /// Event being assigned.
        event: EventId,
        /// The capped location.
        location: crate::ids::LocationId,
        /// The configured slot budget.
        capacity: u32,
    },
    /// The event is in a conflict pair with an already-scheduled event.
    ConflictViolation {
        /// Event being assigned.
        event: EventId,
        /// The already-scheduled conflicting event.
        other: EventId,
    },
    /// The assignment would violate a precedence edge (`before` would not
    /// finish before `after` starts).
    PrecedenceViolation {
        /// The event that must run first.
        before: EventId,
        /// The event that must run later.
        after: EventId,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EventAlreadyScheduled(e) => write!(f, "{e} is already scheduled"),
            Self::LocationConflict { event, interval, occupant } => {
                write!(f, "{event} conflicts with {occupant} (same location) at {interval}")
            }
            Self::ResourcesExceeded { event, interval } => {
                write!(f, "assigning {event} at {interval} exceeds available resources")
            }
            Self::EventNotScheduled(e) => write!(f, "{e} is not scheduled"),
            Self::VenueCapacityExceeded { event, location, capacity } => {
                write!(f, "assigning {event} exceeds capacity {capacity} of {location}")
            }
            Self::ConflictViolation { event, other } => {
                write!(f, "{event} conflicts with scheduled {other} (mutual exclusion)")
            }
            Self::PrecedenceViolation { before, after } => {
                write!(f, "{before} must finish before {after} starts")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Errors raised while applying a [`DeltaOp`] to a live [`Instance`].
///
/// [`DeltaOp`]: crate::delta::DeltaOp
/// [`Instance`]: crate::model::Instance
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// The op referenced an event that does not exist.
    UnknownEvent {
        /// The dangling event id.
        event: EventId,
        /// Current number of candidate events.
        num_events: usize,
    },
    /// The op referenced a user that does not exist.
    UnknownUser {
        /// The dangling user index.
        user: usize,
        /// Current number of users.
        num_users: usize,
    },
    /// The removal would empty a dimension the instance requires.
    WouldEmpty(&'static str),
    /// A payload vector had the wrong length for the instance's shape.
    ShapeMismatch {
        /// What was being applied.
        what: &'static str,
        /// Expected number of entries.
        expected: usize,
        /// Actual number of entries.
        actual: usize,
    },
    /// An interest/activity/weight value was outside its valid range.
    ValueOutOfRange {
        /// What kind of value it was.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A new event's required resources exceed the organizer's θ (or are
    /// invalid), so it could never be scheduled.
    UnschedulableEvent {
        /// Resources the event requires.
        required: f64,
        /// Resources the organizer has per interval.
        available: f64,
    },
    /// `RetireUsers` indices must be strictly increasing (sorted, unique).
    UnsortedUsers,
    /// A new user's weight presence must match the instance's weight
    /// configuration (weighted instances need one, unweighted forbid it).
    WeightMismatch {
        /// Whether the instance carries per-user weights.
        instance_weighted: bool,
    },
    /// The op carried an empty payload where at least one entry is required.
    EmptyOp(&'static str),
    /// A constraint op referenced the same event on both sides.
    SelfConstraint {
        /// The twice-referenced event.
        event: EventId,
    },
    /// Adding the precedence edge would close a cycle.
    ConstraintCycle {
        /// The `before` endpoint of the rejected edge.
        before: EventId,
        /// The `after` endpoint of the rejected edge.
        after: EventId,
    },
    /// The constraint to add already exists.
    DuplicateConstraint,
    /// The constraint to remove does not exist.
    UnknownConstraint,
    /// A venue-capacity op carried a zero budget (clear the entry instead).
    ZeroCapacity,
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownEvent { event, num_events } => {
                write!(f, "{event} does not exist (instance has {num_events} events)")
            }
            Self::UnknownUser { user, num_users } => {
                write!(f, "user {user} does not exist (instance has {num_users} users)")
            }
            Self::WouldEmpty(what) => write!(f, "removal would leave the instance with no {what}"),
            Self::ShapeMismatch { what, expected, actual } => {
                write!(f, "{what}: expected {expected} entries, got {actual}")
            }
            Self::ValueOutOfRange { what, value } => {
                write!(f, "{what} value {value} out of range")
            }
            Self::UnschedulableEvent { required, available } => write!(
                f,
                "new event requires {required} resources but only {available} are available"
            ),
            Self::UnsortedUsers => {
                write!(f, "retired-user indices must be strictly increasing")
            }
            Self::WeightMismatch { instance_weighted } => {
                if *instance_weighted {
                    write!(f, "weighted instance: every new user needs a weight")
                } else {
                    write!(f, "unweighted instance: new users must not carry weights")
                }
            }
            Self::EmptyOp(what) => write!(f, "op carries no {what}"),
            Self::SelfConstraint { event } => {
                write!(f, "constraint references {event} on both sides")
            }
            Self::ConstraintCycle { before, after } => {
                write!(f, "precedence {before} -> {after} would close a cycle")
            }
            Self::DuplicateConstraint => write!(f, "constraint already exists"),
            Self::UnknownConstraint => write!(f, "constraint does not exist"),
            Self::ZeroCapacity => {
                write!(f, "venue capacity must be positive (clear the entry to unconstrain)")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// The wire protocol version the service speaks (see
/// `ses_algorithms::service::wire`).
pub const SERVICE_PROTOCOL_VERSION: u64 = 1;

/// The unified error surface of the long-lived service API (and of the
/// `ses` CLI, which routes every failure through it so exit codes and
/// messages stay consistent).
///
/// Every failure a request can hit maps to one typed variant: the three
/// domain errors ([`BuildError`], [`ScheduleError`], [`DeltaError`]) are
/// wrapped, and the service/CLI-specific conditions (unknown names, bad
/// arguments, protocol violations, I/O) get variants of their own —
/// replacing the ad-hoc `String` errors the CLI used to thread around.
///
/// [`code`](Self::code) gives each variant a stable machine-readable tag
/// (the wire protocol's `Error` responses carry `{code, message}`), and
/// [`is_usage`](Self::is_usage) classifies the caller-mistake subset the
/// CLI reports with exit code 2 instead of 1.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Instance construction or validation failed.
    Build(BuildError),
    /// A schedule mutation was infeasible.
    Schedule(ScheduleError),
    /// A delta op was rejected. `op_index` locates it within the submitted
    /// batch; ops before it were already applied (ops apply one at a time,
    /// each atomically).
    Delta {
        /// Position of the failing op in the request's batch.
        op_index: usize,
        /// The underlying rejection.
        source: DeltaError,
    },
    /// A scheduler name did not resolve against the registry.
    UnknownAlgorithm {
        /// The unresolvable name.
        name: String,
        /// The canonical names the registry does know.
        known: Vec<&'static str>,
    },
    /// An entity index (event/interval/user) was outside the instance.
    OutOfRange {
        /// What kind of entity was looked up.
        what: &'static str,
        /// The out-of-range index.
        index: usize,
        /// Current number of entities of that kind.
        len: usize,
    },
    /// A command-line argument or request parameter was malformed — the
    /// caller-mistake class the CLI exits 2 on.
    InvalidArgument {
        /// Human-readable description of the problem.
        detail: String,
    },
    /// A wire envelope declared a protocol version this build cannot serve.
    UnsupportedVersion {
        /// The version the envelope declared.
        got: u64,
        /// The version this build speaks.
        supported: u64,
    },
    /// A wire line was not a well-formed request envelope.
    Protocol {
        /// What was wrong with it.
        detail: String,
    },
    /// An operating-system I/O failure (file write, pipe, …).
    Io {
        /// The rendered I/O error.
        detail: String,
    },
    /// Durable state (a snapshot, a write-ahead log, or a persisted
    /// instance file) failed its integrity checks: bad magic, checksum
    /// mismatch, impossible framing, or content that no longer validates.
    /// Recovery refuses to proceed rather than risk a silently wrong
    /// answer — this is the loud-failure half of the durability contract.
    Corrupt {
        /// What was corrupt and how it failed validation.
        detail: String,
    },
    /// A runtime failure that is not a caller mistake (verification
    /// divergence, regression-gate trip, …).
    Failed {
        /// What failed.
        detail: String,
    },
    /// A request addressed a session name the server does not have — the
    /// multi-session analogue of [`UnknownAlgorithm`](Self::UnknownAlgorithm).
    UnknownSession {
        /// The unresolvable session name.
        name: String,
    },
}

impl ServiceError {
    /// Builds the [`Delta`](Self::Delta) variant for the op at `op_index`.
    pub fn delta(op_index: usize, source: DeltaError) -> Self {
        Self::Delta { op_index, source }
    }

    /// Convenience constructor for [`InvalidArgument`](Self::InvalidArgument).
    pub fn invalid(detail: impl Into<String>) -> Self {
        Self::InvalidArgument { detail: detail.into() }
    }

    /// Convenience constructor for [`Failed`](Self::Failed).
    pub fn failed(detail: impl Into<String>) -> Self {
        Self::Failed { detail: detail.into() }
    }

    /// Convenience constructor for [`Protocol`](Self::Protocol).
    pub fn protocol(detail: impl Into<String>) -> Self {
        Self::Protocol { detail: detail.into() }
    }

    /// Convenience constructor for [`Corrupt`](Self::Corrupt).
    pub fn corrupt(detail: impl Into<String>) -> Self {
        Self::Corrupt { detail: detail.into() }
    }

    /// Stable machine-readable tag, carried by wire `Error` responses.
    pub fn code(&self) -> &'static str {
        match self {
            Self::Build(_) => "build",
            Self::Schedule(_) => "schedule",
            Self::Delta { .. } => "delta",
            Self::UnknownAlgorithm { .. } => "unknown-algorithm",
            Self::OutOfRange { .. } => "out-of-range",
            Self::InvalidArgument { .. } => "invalid-argument",
            Self::UnsupportedVersion { .. } => "unsupported-version",
            Self::Protocol { .. } => "protocol",
            Self::Io { .. } => "io",
            Self::Corrupt { .. } => "corrupt",
            Self::Failed { .. } => "failed",
            Self::UnknownSession { .. } => "unknown-session",
        }
    }

    /// Whether this is a caller mistake (bad argument / unknown name) as
    /// opposed to a runtime failure. The CLI maps usage errors to exit
    /// code 2 and everything else to exit code 1.
    pub fn is_usage(&self) -> bool {
        matches!(
            self,
            Self::InvalidArgument { .. }
                | Self::UnknownAlgorithm { .. }
                | Self::UnknownSession { .. }
        )
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Build(e) => write!(f, "instance error: {e}"),
            Self::Schedule(e) => write!(f, "schedule error: {e}"),
            Self::Delta { op_index, source } => write!(f, "op {op_index}: {source}"),
            Self::UnknownAlgorithm { name, known } => {
                write!(f, "unknown algorithm '{name}' (known: {})", known.join(", "))
            }
            Self::OutOfRange { what, index, len } => {
                write!(f, "{what} {index} does not exist (instance has {len})")
            }
            Self::InvalidArgument { detail } => write!(f, "{detail}"),
            Self::UnsupportedVersion { got, supported } => {
                write!(f, "unsupported protocol version {got} (this build speaks v{supported})")
            }
            Self::Protocol { detail } => write!(f, "malformed request: {detail}"),
            Self::Io { detail } => write!(f, "I/O error: {detail}"),
            Self::Corrupt { detail } => write!(f, "corrupt state: {detail}"),
            Self::Failed { detail } => write!(f, "{detail}"),
            Self::UnknownSession { name } => {
                write!(f, "unknown session '{name}' (open it first with OpenSession)")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Build(e) => Some(e),
            Self::Schedule(e) => Some(e),
            Self::Delta { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<BuildError> for ServiceError {
    fn from(e: BuildError) -> Self {
        Self::Build(e)
    }
}

impl From<ScheduleError> for ServiceError {
    fn from(e: ScheduleError) -> Self {
        Self::Schedule(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        Self::Io { detail: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = BuildError::InterestOutOfRange { value: 1.5, context: "user 0, event 1".into() };
        assert!(e.to_string().contains("1.5"));
        assert!(e.to_string().contains("user 0"));

        let e = ScheduleError::LocationConflict {
            event: EventId::new(1),
            interval: IntervalId::new(0),
            occupant: EventId::new(2),
        };
        let msg = e.to_string();
        assert!(msg.contains("e1") && msg.contains("e2") && msg.contains("t0"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&BuildError::EmptyDimension("users"));
        takes_err(&ScheduleError::EventNotScheduled(EventId::new(0)));
        takes_err(&ServiceError::failed("x"));
    }

    #[test]
    fn service_error_wraps_domain_errors_with_sources() {
        use std::error::Error as _;
        let e: ServiceError = BuildError::EmptyDimension("users").into();
        assert_eq!(e.code(), "build");
        assert!(e.source().is_some());
        assert!(e.to_string().contains("no users"));

        let e = ServiceError::delta(3, DeltaError::UnknownUser { user: 9, num_users: 2 });
        assert_eq!(e.code(), "delta");
        assert!(e.to_string().contains("op 3"));
        assert!(e.to_string().contains("user 9"));
    }

    #[test]
    fn usage_classification_drives_exit_codes() {
        assert!(ServiceError::invalid("bad flag").is_usage());
        assert!(
            ServiceError::UnknownAlgorithm { name: "XYZ".into(), known: vec!["ALG"] }.is_usage()
        );
        assert!(!ServiceError::failed("verify diverged").is_usage());
        assert!(!ServiceError::Io { detail: "broken pipe".into() }.is_usage());
        assert!(!ServiceError::UnsupportedVersion { got: 9, supported: 1 }.is_usage());
        // Corrupt durable state is a runtime failure (exit 1), never a
        // usage error: the caller typed nothing wrong.
        assert!(!ServiceError::corrupt("wal record 3: payload checksum mismatch").is_usage());
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            ServiceError::Build(BuildError::EmptyDimension("users")).code(),
            ServiceError::Schedule(ScheduleError::EventNotScheduled(EventId::new(0))).code(),
            ServiceError::delta(0, DeltaError::UnsortedUsers).code(),
            ServiceError::UnknownAlgorithm { name: String::new(), known: vec![] }.code(),
            ServiceError::OutOfRange { what: "event", index: 0, len: 0 }.code(),
            ServiceError::invalid("").code(),
            ServiceError::UnsupportedVersion { got: 0, supported: 1 }.code(),
            ServiceError::protocol("").code(),
            ServiceError::Io { detail: String::new() }.code(),
            ServiceError::corrupt("").code(),
            ServiceError::failed("").code(),
        ];
        let mut dedup = all.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "codes must be distinct");
    }
}
