//! Error types for instance construction and schedule manipulation.

use crate::ids::{EventId, IntervalId};
use std::fmt;

/// Errors raised while building or validating an [`Instance`].
///
/// [`Instance`]: crate::model::Instance
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// An interest value was outside `[0, 1]`.
    InterestOutOfRange {
        /// Offending value.
        value: f64,
        /// Human-readable description of where it was found.
        context: String,
    },
    /// An activity probability was outside `[0, 1]`.
    ActivityOutOfRange {
        /// Offending value.
        value: f64,
        /// Human-readable description of where it was found.
        context: String,
    },
    /// A competing event referenced an interval that does not exist.
    DanglingCompetingInterval {
        /// The out-of-range interval index.
        interval: usize,
        /// Number of intervals in the instance.
        num_intervals: usize,
    },
    /// An event's required resources exceed the organizer's total resources,
    /// so the event can never be scheduled.
    EventNeverSchedulable {
        /// The impossible event.
        event: EventId,
        /// Resources the event requires.
        required: f64,
        /// Resources the organizer has per interval.
        available: f64,
    },
    /// A dimension (users/events/intervals) was zero where it must not be.
    EmptyDimension(&'static str),
    /// A matrix had the wrong number of entries for the declared dimensions.
    DimensionMismatch {
        /// What was being validated.
        what: &'static str,
        /// Expected number of entries.
        expected: usize,
        /// Actual number of entries.
        actual: usize,
    },
    /// A resource quantity (θ or ξ) was negative or non-finite.
    InvalidResource {
        /// Offending value.
        value: f64,
        /// Human-readable description of where it was found.
        context: String,
    },
    /// A user weight was negative or non-finite.
    InvalidWeight {
        /// Offending value.
        value: f64,
        /// The user it belongs to.
        user: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InterestOutOfRange { value, context } => {
                write!(f, "interest value {value} out of [0,1] ({context})")
            }
            Self::ActivityOutOfRange { value, context } => {
                write!(f, "activity probability {value} out of [0,1] ({context})")
            }
            Self::DanglingCompetingInterval { interval, num_intervals } => write!(
                f,
                "competing event references interval {interval} but instance has {num_intervals}"
            ),
            Self::EventNeverSchedulable { event, required, available } => write!(
                f,
                "{event} requires {required} resources but only {available} are available"
            ),
            Self::EmptyDimension(what) => write!(f, "instance has no {what}"),
            Self::DimensionMismatch { what, expected, actual } => {
                write!(f, "{what}: expected {expected} entries, got {actual}")
            }
            Self::InvalidResource { value, context } => {
                write!(f, "invalid resource quantity {value} ({context})")
            }
            Self::InvalidWeight { value, user } => {
                write!(f, "invalid weight {value} for user {user}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Errors raised while mutating a [`Schedule`].
///
/// [`Schedule`]: crate::schedule::Schedule
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// The event is already scheduled (schedules map each event at most once).
    EventAlreadyScheduled(EventId),
    /// Assigning the event would place two events with the same location in
    /// the same interval (location constraint of §2.1).
    LocationConflict {
        /// Event being assigned.
        event: EventId,
        /// Interval of the attempted assignment.
        interval: IntervalId,
        /// Already-scheduled event occupying the same location.
        occupant: EventId,
    },
    /// Assigning the event would exceed the organizer's resources θ in the
    /// interval (resources constraint of §2.1).
    ResourcesExceeded {
        /// Event being assigned.
        event: EventId,
        /// Interval of the attempted assignment.
        interval: IntervalId,
    },
    /// The event is not currently scheduled (for removal operations).
    EventNotScheduled(EventId),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EventAlreadyScheduled(e) => write!(f, "{e} is already scheduled"),
            Self::LocationConflict { event, interval, occupant } => {
                write!(f, "{event} conflicts with {occupant} (same location) at {interval}")
            }
            Self::ResourcesExceeded { event, interval } => {
                write!(f, "assigning {event} at {interval} exceeds available resources")
            }
            Self::EventNotScheduled(e) => write!(f, "{e} is not scheduled"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Errors raised while applying a [`DeltaOp`] to a live [`Instance`].
///
/// [`DeltaOp`]: crate::delta::DeltaOp
/// [`Instance`]: crate::model::Instance
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// The op referenced an event that does not exist.
    UnknownEvent {
        /// The dangling event id.
        event: EventId,
        /// Current number of candidate events.
        num_events: usize,
    },
    /// The op referenced a user that does not exist.
    UnknownUser {
        /// The dangling user index.
        user: usize,
        /// Current number of users.
        num_users: usize,
    },
    /// The removal would empty a dimension the instance requires.
    WouldEmpty(&'static str),
    /// A payload vector had the wrong length for the instance's shape.
    ShapeMismatch {
        /// What was being applied.
        what: &'static str,
        /// Expected number of entries.
        expected: usize,
        /// Actual number of entries.
        actual: usize,
    },
    /// An interest/activity/weight value was outside its valid range.
    ValueOutOfRange {
        /// What kind of value it was.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A new event's required resources exceed the organizer's θ (or are
    /// invalid), so it could never be scheduled.
    UnschedulableEvent {
        /// Resources the event requires.
        required: f64,
        /// Resources the organizer has per interval.
        available: f64,
    },
    /// `RetireUsers` indices must be strictly increasing (sorted, unique).
    UnsortedUsers,
    /// A new user's weight presence must match the instance's weight
    /// configuration (weighted instances need one, unweighted forbid it).
    WeightMismatch {
        /// Whether the instance carries per-user weights.
        instance_weighted: bool,
    },
    /// The op carried an empty payload where at least one entry is required.
    EmptyOp(&'static str),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownEvent { event, num_events } => {
                write!(f, "{event} does not exist (instance has {num_events} events)")
            }
            Self::UnknownUser { user, num_users } => {
                write!(f, "user {user} does not exist (instance has {num_users} users)")
            }
            Self::WouldEmpty(what) => write!(f, "removal would leave the instance with no {what}"),
            Self::ShapeMismatch { what, expected, actual } => {
                write!(f, "{what}: expected {expected} entries, got {actual}")
            }
            Self::ValueOutOfRange { what, value } => {
                write!(f, "{what} value {value} out of range")
            }
            Self::UnschedulableEvent { required, available } => write!(
                f,
                "new event requires {required} resources but only {available} are available"
            ),
            Self::UnsortedUsers => {
                write!(f, "retired-user indices must be strictly increasing")
            }
            Self::WeightMismatch { instance_weighted } => {
                if *instance_weighted {
                    write!(f, "weighted instance: every new user needs a weight")
                } else {
                    write!(f, "unweighted instance: new users must not carry weights")
                }
            }
            Self::EmptyOp(what) => write!(f, "op carries no {what}"),
        }
    }
}

impl std::error::Error for DeltaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = BuildError::InterestOutOfRange { value: 1.5, context: "user 0, event 1".into() };
        assert!(e.to_string().contains("1.5"));
        assert!(e.to_string().contains("user 0"));

        let e = ScheduleError::LocationConflict {
            event: EventId::new(1),
            interval: IntervalId::new(0),
            occupant: EventId::new(2),
        };
        let msg = e.to_string();
        assert!(msg.contains("e1") && msg.contains("e2") && msg.contains("t0"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&BuildError::EmptyDimension("users"));
        takes_err(&ScheduleError::EventNotScheduled(EventId::new(0)));
    }
}
