//! Crash-safe on-disk session state: snapshot containers + write-ahead log.
//!
//! ROADMAP item 5's LSM-style durability substrate. A session's state on
//! disk is a **generation pair**: `snapshot-GGGGGGGG.ses` (the folded state
//! at the moment generation `G` began) plus `wal-GGGGGGGG.log` (every
//! state-mutating request applied since). Compaction folds the log into a
//! fresh snapshot under generation `G+1` and retires generations older
//! than `G` — the two newest pairs are kept, so a snapshot that turns out
//! unreadable on recovery falls back losslessly to its predecessor plus
//! both logs.
//!
//! ## Snapshot container
//!
//! | offset | bytes | field |
//! |--------|-------|-------|
//! | 0      | 8     | magic `SESSNAP1` |
//! | 8      | 8     | payload length `n` (u64 LE) |
//! | 16     | n     | payload (opaque to this layer) |
//! | 16+n   | 4     | CRC-32 (IEEE) of the payload (u32 LE) |
//! | 20+n   | 8     | footer magic `SNAPEND.` |
//!
//! Snapshots are written crash-safely: the full container goes to a
//! temporary file in the same directory, the file is fsynced, atomically
//! renamed into place, and the directory is fsynced — a crash at any
//! point leaves either the complete old state or the complete new state,
//! never a torn file under the final name. A reader that finds *anything*
//! wrong (short file, bad magic, length mismatch, checksum mismatch)
//! reports the snapshot invalid; recovery policy (fall back vs. fail
//! loudly) lives with the caller.
//!
//! ## Write-ahead log
//!
//! An 8-byte file magic `SESWAL1.` followed by self-framing records:
//!
//! | bytes | field |
//! |-------|-------|
//! | 4     | payload length (u32 LE) |
//! | 4     | CRC-32 of the payload (u32 LE) |
//! | 4     | CRC-32 of the previous 8 header bytes (u32 LE) |
//! | n     | payload |
//!
//! The header CRC is what lets the reader tell a **torn tail** (a crash
//! mid-append left a prefix of the final record — truncate and continue,
//! nothing acknowledged was lost because records are fsynced before their
//! request is applied or answered) from a **bit flip** (all declared bytes
//! are present but a checksum disagrees — fail loudly with
//! [`ServiceError::Corrupt`], because acknowledged data can no longer be
//! trusted). Every single-bit corruption lands in the loud class: flips in
//! the length field break the header CRC, flips in the payload break the
//! payload CRC, flips in either CRC break themselves.

use crate::error::ServiceError;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Leading magic of a snapshot container.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SESSNAP1";
/// Trailing magic of a snapshot container.
pub const SNAPSHOT_FOOTER: &[u8; 8] = b"SNAPEND.";
/// Leading magic of a write-ahead log.
pub const WAL_MAGIC: &[u8; 8] = b"SESWAL1.";
/// Bytes of a WAL record header (`len`, payload CRC, header CRC).
pub const WAL_HEADER_LEN: usize = 12;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the same
/// checksum gzip and PNG use. Table-driven, one table build per process.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// File name of generation `generation`'s snapshot.
pub fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot-{generation:08}.ses"))
}

/// File name of generation `generation`'s write-ahead log.
pub fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation:08}.log"))
}

/// Writes `payload` as generation `generation`'s snapshot, crash-safely:
/// temp file in `dir` → fsync → atomic rename → directory fsync.
///
/// # Errors
/// [`ServiceError::Io`] on any filesystem failure; the final path is never
/// left torn.
pub fn write_snapshot(dir: &Path, generation: u64, payload: &[u8]) -> Result<(), ServiceError> {
    let final_path = snapshot_path(dir, generation);
    let tmp_path = dir.join(format!(".snapshot-{generation:08}.tmp"));
    let mut bytes = Vec::with_capacity(payload.len() + 28);
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(SNAPSHOT_FOOTER);
    let mut tmp = File::create(&tmp_path).map_err(io_at(&tmp_path))?;
    tmp.write_all(&bytes).map_err(io_at(&tmp_path))?;
    tmp.sync_all().map_err(io_at(&tmp_path))?;
    drop(tmp);
    fs::rename(&tmp_path, &final_path).map_err(io_at(&final_path))?;
    sync_dir(dir)
}

/// Reads and fully validates a snapshot container, returning its payload.
///
/// # Errors
/// * [`ServiceError::Io`] when the file cannot be read at all;
/// * [`ServiceError::Corrupt`] when it can, but fails any integrity check
///   (truncated, bad magic, length mismatch, checksum mismatch). Callers
///   with an older generation on disk may treat this as "fall back";
///   callers without one must surface it.
pub fn read_snapshot(path: &Path) -> Result<Vec<u8>, ServiceError> {
    let bytes = fs::read(path).map_err(io_at(path))?;
    let corrupt =
        |what: &str| ServiceError::corrupt(format!("snapshot {}: {what}", path.display()));
    if bytes.len() < 28 {
        return Err(corrupt(&format!("file is {} bytes, below the 28-byte minimum", bytes.len())));
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad leading magic"));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    if bytes.len() != 28 + len {
        return Err(corrupt(&format!(
            "declared payload of {len} bytes disagrees with file size {}",
            bytes.len()
        )));
    }
    let payload = &bytes[16..16 + len];
    let stored_crc = u32::from_le_bytes(bytes[16 + len..20 + len].try_into().expect("4 bytes"));
    if crc32(payload) != stored_crc {
        return Err(corrupt("payload checksum mismatch"));
    }
    if &bytes[20 + len..] != SNAPSHOT_FOOTER {
        return Err(corrupt("bad footer magic"));
    }
    Ok(payload.to_vec())
}

/// The fully-validated contents of one write-ahead log file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalContents {
    /// The complete, checksum-verified record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// When the file ends in a torn record (a crash mid-append), the byte
    /// offset the file should be truncated to before appending resumes.
    /// `None` means the file ended cleanly on a record boundary.
    pub torn_at: Option<u64>,
}

/// Reads a write-ahead log, verifying every record.
///
/// A **prefix** of a record at end-of-file (torn header, or full header
/// with fewer payload bytes than declared) is a torn append: tolerated,
/// reported via [`WalContents::torn_at`]. A checksum or magic mismatch
/// with all declared bytes present is a bit flip: loud
/// [`ServiceError::Corrupt`].
///
/// # Errors
/// [`ServiceError::Io`] when the file cannot be read;
/// [`ServiceError::Corrupt`] on any in-place corruption.
pub fn read_wal(path: &Path) -> Result<WalContents, ServiceError> {
    let bytes = fs::read(path).map_err(io_at(path))?;
    let corrupt = |what: String| ServiceError::corrupt(format!("wal {}: {what}", path.display()));
    if bytes.len() < 8 {
        // A crash while the log file itself was being created: nothing was
        // ever appended, so there is nothing to lose.
        return Ok(WalContents { records: Vec::new(), torn_at: Some(0) });
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(corrupt("bad file magic".into()));
    }
    let mut records = Vec::new();
    let mut pos = 8usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < WAL_HEADER_LEN {
            // A prefix of a header: torn append.
            return Ok(WalContents { records, torn_at: Some(pos as u64) });
        }
        let header = &bytes[pos..pos + WAL_HEADER_LEN];
        let stored_header_crc = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if crc32(&header[..8]) != stored_header_crc {
            return Err(corrupt(format!("record {}: header checksum mismatch", records.len())));
        }
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let payload_crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if remaining < WAL_HEADER_LEN + len {
            // Valid header, short payload: torn append.
            return Ok(WalContents { records, torn_at: Some(pos as u64) });
        }
        let payload = &bytes[pos + WAL_HEADER_LEN..pos + WAL_HEADER_LEN + len];
        if crc32(payload) != payload_crc {
            return Err(corrupt(format!("record {}: payload checksum mismatch", records.len())));
        }
        records.push(payload.to_vec());
        pos += WAL_HEADER_LEN + len;
    }
    Ok(WalContents { records, torn_at: None })
}

/// Append handle on one write-ahead log file. Creation writes (or, after
/// a torn tail, rewrites from the truncation point) the durable framing;
/// every [`append`](Self::append) fsyncs before returning, so a record
/// this returns `Ok` for survives any subsequent crash.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
}

impl WalWriter {
    /// Opens `path` for appending, creating it (with the file magic) if
    /// missing or empty. `truncate_to` carries a torn-tail offset from
    /// [`read_wal`]; the file is cut back to that record boundary first.
    ///
    /// # Errors
    /// [`ServiceError::Io`] on any filesystem failure.
    pub fn open(path: &Path, truncate_to: Option<u64>) -> Result<Self, ServiceError> {
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)
            .map_err(io_at(path))?;
        if let Some(offset) = truncate_to {
            file.set_len(offset).map_err(io_at(path))?;
        }
        let len = file.metadata().map_err(io_at(path))?.len();
        if len < 8 {
            // New, empty, or truncated-to-zero file: (re)write the magic.
            file.set_len(0).map_err(io_at(path))?;
            file.write_all(WAL_MAGIC).map_err(io_at(path))?;
            file.sync_all().map_err(io_at(path))?;
        }
        Ok(Self { file })
    }

    /// Re-fsyncs the log file. Every [`append`](Self::append) already
    /// syncs before acknowledging, so this adds no durability for
    /// committed records — it exists for explicit wind-down points (the
    /// network server's graceful shutdown fsyncs every session's log one
    /// final time before closing the listeners).
    ///
    /// # Errors
    /// [`ServiceError::Io`] on sync failure.
    pub fn sync(&mut self) -> Result<(), ServiceError> {
        self.file.sync_all()?;
        Ok(())
    }

    /// Appends one record and fsyncs. After `Ok`, the record is durable.
    ///
    /// # Errors
    /// [`ServiceError::Io`] on write or sync failure.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), ServiceError> {
        let mut framed = Vec::with_capacity(WAL_HEADER_LEN + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(payload).to_le_bytes());
        framed.extend_from_slice(&crc32(&framed[..8]).to_le_bytes());
        framed.extend_from_slice(payload);
        self.file.write_all(&framed)?;
        self.file.sync_all()?;
        Ok(())
    }
}

/// The snapshot generations present in `dir`, ascending. A state
/// directory with no snapshots is a fresh session.
///
/// # Errors
/// [`ServiceError::Io`] when the directory cannot be listed.
pub fn generations(dir: &Path) -> Result<Vec<u64>, ServiceError> {
    scan(dir, "snapshot-", ".ses")
}

/// The write-ahead-log generations present in `dir`, ascending.
///
/// # Errors
/// [`ServiceError::Io`] when the directory cannot be listed.
pub fn wal_generations(dir: &Path) -> Result<Vec<u64>, ServiceError> {
    scan(dir, "wal-", ".log")
}

fn scan(dir: &Path, prefix: &str, suffix: &str) -> Result<Vec<u64>, ServiceError> {
    let mut gens = Vec::new();
    for entry in fs::read_dir(dir).map_err(io_at(dir))? {
        let entry = entry.map_err(io_at(dir))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name.strip_prefix(prefix).and_then(|n| n.strip_suffix(suffix)) {
            if let Ok(g) = num.parse::<u64>() {
                gens.push(g);
            }
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

/// Deletes the snapshot + log pairs of every generation older than
/// `keep_from`. Missing files are fine (retirement is idempotent).
///
/// # Errors
/// [`ServiceError::Io`] on a failing delete of an existing file.
pub fn retire_generations(dir: &Path, keep_from: u64) -> Result<(), ServiceError> {
    for g in generations(dir)? {
        if g >= keep_from {
            continue;
        }
        for path in [snapshot_path(dir, g), wal_path(dir, g)] {
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_at(&path)(e)),
            }
        }
    }
    Ok(())
}

/// Maps an I/O error to [`ServiceError::Io`] with the offending path.
fn io_at(path: &Path) -> impl Fn(std::io::Error) -> ServiceError + '_ {
    move |e| ServiceError::Io { detail: format!("{}: {e}", path.display()) }
}

/// Fsyncs a directory so a just-renamed file's directory entry is durable.
fn sync_dir(dir: &Path) -> Result<(), ServiceError> {
    // Opening a directory read-only for fsync is POSIX; on platforms where
    // it fails (e.g. Windows), the rename itself is the best available
    // ordering guarantee, so the failure is swallowed deliberately.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Reads a whole file, mapping failures to [`ServiceError::Io`] — shared
/// helper for callers loading persisted instance files.
///
/// # Errors
/// [`ServiceError::Io`] with the offending path.
pub fn read_file(path: &Path) -> Result<Vec<u8>, ServiceError> {
    let mut buf = Vec::new();
    File::open(path).map_err(io_at(path))?.read_to_end(&mut buf).map_err(io_at(path))?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ses-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Any single-bit flip must change the checksum.
        let base = crc32(b"hello wal");
        let mut flipped = *b"hello wal";
        for byte in 0..flipped.len() {
            for bit in 0..8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}.{bit} went unnoticed");
                flipped[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn snapshot_roundtrips_and_rejects_every_corruption() {
        let dir = tmpdir("snap");
        let payload = b"{\"state\":42}".to_vec();
        write_snapshot(&dir, 3, &payload).unwrap();
        let path = snapshot_path(&dir, 3);
        assert_eq!(read_snapshot(&path).unwrap(), payload);
        // No temp file left behind.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);

        let pristine = fs::read(&path).unwrap();
        // Every truncation point fails validation (never a wrong payload).
        for cut in 0..pristine.len() {
            fs::write(&path, &pristine[..cut]).unwrap();
            let err = read_snapshot(&path).unwrap_err();
            assert_eq!(err.code(), "corrupt", "cut at {cut}: {err}");
        }
        // Every single-bit flip fails validation.
        for byte in 0..pristine.len() {
            let mut bent = pristine.clone();
            bent[byte] ^= 1;
            fs::write(&path, &bent).unwrap();
            let err = read_snapshot(&path).unwrap_err();
            assert_eq!(err.code(), "corrupt", "flip at byte {byte}: {err}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_roundtrips_records() {
        let dir = tmpdir("wal");
        let path = wal_path(&dir, 0);
        let payloads: Vec<Vec<u8>> =
            vec![b"one".to_vec(), Vec::new(), vec![0xAB; 1000], b"four".to_vec()];
        let mut w = WalWriter::open(&path, None).unwrap();
        for p in &payloads {
            w.append(p).unwrap();
        }
        drop(w);
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records, payloads);
        assert_eq!(contents.torn_at, None);

        // Re-opening appends after the existing records.
        let mut w = WalWriter::open(&path, None).unwrap();
        w.append(b"five").unwrap();
        drop(w);
        assert_eq!(read_wal(&path).unwrap().records.len(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_classifies_every_fault_as_torn_or_corrupt() {
        let dir = tmpdir("wal-faults");
        let path = wal_path(&dir, 0);
        let payloads: Vec<Vec<u8>> = vec![b"first record".to_vec(), b"second".to_vec()];
        let mut w = WalWriter::open(&path, None).unwrap();
        for p in &payloads {
            w.append(p).unwrap();
        }
        drop(w);
        let pristine = fs::read(&path).unwrap();
        let boundaries = [8, 8 + 12 + payloads[0].len(), pristine.len()];

        // Truncations: a cut at a record boundary is clean up to there; any
        // other cut reports a torn tail at the last boundary before it.
        // Either way every surviving record is intact — never an error.
        for cut in 0..pristine.len() {
            fs::write(&path, &pristine[..cut]).unwrap();
            let contents = read_wal(&path).unwrap();
            let survived = boundaries.iter().filter(|&&b| b <= cut).count();
            assert_eq!(contents.records, payloads[..survived.saturating_sub(1)].to_vec());
            if boundaries.contains(&cut) {
                assert_eq!(contents.torn_at, None, "cut at {cut}");
            } else {
                let expected = if cut < 8 { 0 } else { *boundaries[..survived].last().unwrap() };
                assert_eq!(contents.torn_at, Some(expected as u64), "cut at {cut}");
            }
        }

        // Bit flips: every one is a loud typed corruption.
        for byte in 0..pristine.len() {
            let mut bent = pristine.clone();
            bent[byte] ^= 0x10;
            fs::write(&path, &bent).unwrap();
            let err = read_wal(&path).unwrap_err();
            assert_eq!(err.code(), "corrupt", "flip at byte {byte}");
        }

        // Truncation followed by re-open resumes cleanly mid-file.
        fs::write(&path, &pristine[..boundaries[1] + 5]).unwrap();
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.torn_at, Some(boundaries[1] as u64));
        let mut w = WalWriter::open(&path, contents.torn_at).unwrap();
        w.append(b"replacement").unwrap();
        drop(w);
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records, vec![payloads[0].clone(), b"replacement".to_vec()]);
        assert_eq!(contents.torn_at, None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generation_scan_and_retirement() {
        let dir = tmpdir("gens");
        assert_eq!(generations(&dir).unwrap(), Vec::<u64>::new());
        for g in [0u64, 1, 2, 3] {
            write_snapshot(&dir, g, b"x").unwrap();
            WalWriter::open(&wal_path(&dir, g), None).unwrap();
        }
        // Unrelated files are ignored by the scan.
        fs::write(dir.join("notes.txt"), b"hi").unwrap();
        assert_eq!(generations(&dir).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(wal_generations(&dir).unwrap(), vec![0, 1, 2, 3]);
        retire_generations(&dir, 2).unwrap();
        assert_eq!(generations(&dir).unwrap(), vec![2, 3]);
        assert!(!wal_path(&dir, 1).exists());
        assert!(wal_path(&dir, 2).exists());
        // Idempotent.
        retire_generations(&dir, 2).unwrap();
        assert_eq!(generations(&dir).unwrap(), vec![2, 3]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
