//! Property-based tests for the constraint layer: validation exactness
//! (the validator rejects a set **iff** an independently-computed
//! malformedness predicate says so), and downward closure (removing an
//! assignment never invalidates a previously-valid candidate).
//!
//! Malformed sets cannot be built through the `ConstraintSet` mutators —
//! they dedup and overwrite — so raw sets arrive the same way hostile ones
//! would in production: through serde, from JSON assembled out of random
//! id/capacity vectors.

use proptest::prelude::*;
use ses_core::constraints::ConstraintSet;
use ses_core::ids::{EventId, IntervalId, LocationId};
use ses_core::model::{ActivityMatrix, DenseInterest, Event, Instance, InstanceBuilder};
use ses_core::schedule::Schedule;

/// Raw constraint material: `(location, capacity)` pairs and two id-pair
/// lists, each free to be malformed (zero capacities, duplicate locations,
/// dangling or self-referential ids, precedence cycles). Lengths vary by
/// truncating fixed-size samples (the vendored proptest generates
/// fixed-length vectors only).
type RawSet = (Vec<(u32, u32)>, Vec<(u32, u32)>, Vec<(u32, u32)>);

fn raw_set() -> impl Strategy<Value = RawSet> {
    let pair = || (0u32..8, 0u32..8);
    (
        (proptest::collection::vec((0u32..4, 0u32..4), 3), 0usize..=3),
        (proptest::collection::vec(pair(), 5), 0usize..=5),
        (proptest::collection::vec(pair(), 5), 0usize..=5),
    )
        .prop_map(|((mut caps, nc), (mut confl, nf), (mut prec, np))| {
            caps.truncate(nc);
            confl.truncate(nf);
            prec.truncate(np);
            (caps, confl, prec)
        })
}

/// Deserializes the raw material into a `ConstraintSet` — the only door
/// through which malformed sets can enter, exactly as in production.
fn to_set((caps, conflicts, precedences): &RawSet) -> ConstraintSet {
    let caps: Vec<String> =
        caps.iter().map(|(l, c)| format!("{{\"location\":{l},\"capacity\":{c}}}")).collect();
    let confl: Vec<String> =
        conflicts.iter().map(|(a, b)| format!("{{\"a\":{a},\"b\":{b}}}")).collect();
    let prec: Vec<String> =
        precedences.iter().map(|(a, b)| format!("{{\"before\":{a},\"after\":{b}}}")).collect();
    let json = format!(
        "{{\"venue_capacities\":[{}],\"conflicts\":[{}],\"precedences\":[{}]}}",
        caps.join(","),
        confl.join(","),
        prec.join(",")
    );
    serde_json::from_str(&json).expect("hand-assembled JSON is syntactically valid")
}

/// Independent malformedness predicate, re-derived from the documented
/// rules with no shared code: a set is malformed iff it has a zero or
/// duplicate-location capacity, a dangling or self-referential id, or a
/// precedence cycle (found here by three-color DFS, not Kahn's algorithm).
fn is_malformed((caps, conflicts, precedences): &RawSet, num_events: u32) -> bool {
    if caps.iter().any(|&(_, c)| c == 0) {
        return true;
    }
    if caps.iter().enumerate().any(|(i, &(l, _))| caps[..i].iter().any(|&(m, _)| m == l)) {
        return true;
    }
    let bad_pair = |&(a, b): &(u32, u32)| a >= num_events || b >= num_events || a == b;
    if conflicts.iter().any(bad_pair) || precedences.iter().any(bad_pair) {
        return true;
    }
    // Cycle hunt: DFS from every node with three-color marking.
    let n = num_events as usize;
    let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        // Explicit stack of (node, next-edge-cursor) frames.
        let mut stack = vec![(start, 0usize)];
        color[start] = 1;
        while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
            let next = precedences
                .iter()
                .enumerate()
                .skip(*cursor)
                .find(|(_, &(b, _))| b as usize == node);
            match next {
                Some((i, &(_, after))) => {
                    *cursor = i + 1;
                    let after = after as usize;
                    if color[after] == 1 {
                        return true; // back edge
                    }
                    if color[after] == 0 {
                        color[after] = 1;
                        stack.push((after, 0));
                    }
                }
                None => {
                    color[node] = 2;
                    stack.pop();
                }
            }
        }
    }
    false
}

/// Quantized probability in [0, 1] (steps of 1/64).
fn prob() -> impl Strategy<Value = f64> {
    (0u8..=64).prop_map(|x| x as f64 / 64.0)
}

/// A small random instance (up to 6 events over 3 locations, 4 intervals,
/// 5 users) — enough shape diversity for the feasibility properties while
/// keeping the assignment universe enumerable.
fn small_instance() -> impl Strategy<Value = Instance> {
    let dims = (2usize..=6, 1usize..=4, 1usize..=5);
    dims.prop_flat_map(|(ne, nt, nu)| {
        (
            Just(ne),
            Just(nt),
            Just(nu),
            proptest::collection::vec(0usize..3, ne),
            proptest::collection::vec(prob(), ne * nu),
            proptest::collection::vec(prob(), nu * nt),
        )
    })
    .prop_map(|(ne, nt, nu, locs, ev, act)| {
        let mut b = InstanceBuilder::new();
        for &l in &locs {
            b.add_event(Event::new(LocationId::new(l), 1.0));
        }
        b.add_intervals(nt);
        b.event_interest(DenseInterest::from_raw(ne, nu, ev).unwrap())
            .competing_interest(DenseInterest::from_raw(0, nu, vec![]).unwrap())
            .activity(ActivityMatrix::from_raw(nu, nt, act).unwrap())
            .resources(100.0)
            .build()
            .unwrap()
    })
}

/// Raw material for a *well-formed* constraint set: folded into range and
/// made acyclic (precedence low → high) against a concrete event count.
fn valid_raw() -> impl Strategy<Value = RawSet> {
    (
        (proptest::collection::vec((0u32..3, 1u32..4), 2), 0usize..=2),
        (proptest::collection::vec((0u32..8, 0u32..8), 4), 0usize..=4),
        (proptest::collection::vec((0u32..8, 0u32..8), 4), 0usize..=4),
    )
        .prop_map(|((mut caps, nc), (mut confl, nf), (mut prec, np))| {
            caps.truncate(nc);
            confl.truncate(nf);
            prec.truncate(np);
            (caps, confl, prec)
        })
}

/// Builds the well-formed set for an instance with `ne` events: distinct
/// in-range ids, positive capacities, precedence edges pointing from the
/// lower id to the higher one (acyclic by construction).
fn well_formed((caps, conflicts, precedences): &RawSet, ne: usize) -> ConstraintSet {
    let mut cs = ConstraintSet::new();
    for &(l, c) in caps {
        cs.set_venue_capacity(LocationId::new(l as usize), c.max(1));
    }
    for &(a, b) in conflicts {
        let (a, b) = (a as usize % ne, b as usize % ne);
        if a != b {
            cs.add_conflict(EventId::new(a), EventId::new(b));
        }
    }
    for &(a, b) in precedences {
        let (a, b) = (a as usize % ne, b as usize % ne);
        if a != b {
            cs.add_precedence(EventId::new(a.min(b)), EventId::new(a.max(b)));
        }
    }
    cs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `ConstraintSet::validate` rejects **exactly** the malformed sets:
    /// its verdict matches the independent predicate on every random raw
    /// set, for every probed event count.
    #[test]
    fn validation_rejects_exactly_the_malformed_sets(
        raw in raw_set(),
        num_events in 1u32..8,
    ) {
        let cs = to_set(&raw);
        let verdict = cs.validate(num_events as usize);
        let malformed = is_malformed(&raw, num_events);
        prop_assert_eq!(
            verdict.is_err(),
            malformed,
            "validate said {:?} but the independent predicate said malformed={} for {:?} \
             over {} events",
            verdict,
            malformed,
            raw,
            num_events
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Downward closure, the property greedy insertion and EXACT's
    /// enumeration rely on: unassigning an event never *invalidates* a
    /// candidate that was valid before (feasibility is monotone under
    /// unapply), and the shrunken schedule itself stays feasible.
    #[test]
    fn feasibility_monotone_under_unapply(
        inst in small_instance(),
        raw in valid_raw(),
        mask in proptest::collection::vec(0u8..2, 24),
        victim in 0usize..8,
    ) {
        let mut inst = inst;
        inst.constraints = well_formed(&raw, inst.num_events());
        prop_assert!(inst.validate().is_ok());

        // Greedily build a feasible schedule from a random admission mask.
        let mut schedule = Schedule::new(&inst);
        for (i, (e, t)) in inst.assignment_universe().enumerate() {
            if mask[i % mask.len()] == 1 && schedule.check_assign(&inst, e, t).is_ok() {
                schedule.assign(&inst, e, t).expect("checked valid");
            }
        }
        if schedule.is_empty() {
            continue; // nothing admitted this round — vacuous case
        }

        let valid_before: Vec<(EventId, IntervalId)> = inst
            .assignment_universe()
            .filter(|&(e, t)| schedule.is_valid_assignment(&inst, e, t))
            .collect();

        let scheduled: Vec<EventId> =
            schedule.assignments().iter().map(|a| a.event).collect();
        let x = scheduled[victim % scheduled.len()];
        schedule.unassign(&inst, x).expect("scheduled event unassigns");

        prop_assert!(schedule.verify_feasible(&inst).is_ok(),
            "prefix of a feasible schedule became infeasible");
        for (e, t) in valid_before {
            prop_assert!(
                schedule.is_valid_assignment(&inst, e, t),
                "unassigning {:?} invalidated previously-valid candidate {:?}@{:?}",
                x, e, t
            );
        }
    }
}
