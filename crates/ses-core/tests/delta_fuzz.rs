//! Fuzz-style property test for the validation-first guarantee of
//! [`ses_core::delta::apply`]: an op that fails validation — dangling ids,
//! out-of-range cells, cycle-inducing precedence, shape mismatches — must
//! be rejected **before** any mutation, leaving the instance, its
//! constraint set, and every cached column sum bitwise untouched.
//!
//! This is the invariant the durable session layer leans on: a failed
//! `ApplyOps` request is still written to the write-ahead log, and replay
//! reproduces the same rejection — which is only deterministic if a
//! rejected op has *zero* side effects, every time, for every interleaving
//! with valid ops.

use proptest::prelude::*;
use ses_core::delta::{apply, DeltaOp, NewUser};
use ses_core::ids::{EventId, IntervalId, LocationId};
use ses_core::model::{running_example, Event, Instance};
use ses_core::scoring::ScoringEngine;

/// The fixed instance every case runs against: the paper's running
/// example (4 events, 2 users, 2 intervals, 2 competing events, θ = 10)
/// with a conflict pair, a precedence chain, and a venue capacity
/// pre-installed, so duplicate/cycle-inducing/unknown-removal constraint
/// ops have something to collide with.
fn fixture() -> Instance {
    let mut inst = running_example();
    let e = |i: usize| EventId::new(i);
    apply(&mut inst, &DeltaOp::AddConflict { a: e(0), b: e(3) }).unwrap();
    apply(&mut inst, &DeltaOp::AddPrecedence { before: e(0), after: e(1) }).unwrap();
    apply(&mut inst, &DeltaOp::AddPrecedence { before: e(1), after: e(2) }).unwrap();
    apply(
        &mut inst,
        &DeltaOp::SetVenueCapacity { location: LocationId::new(0), capacity: Some(1) },
    )
    .unwrap();
    inst
}

/// Every float cache a warm scheduler would carry for this instance:
/// the competing-mass table `C(u,t)` and the per-event interest column
/// sums, captured as raw bits so `-0.0`/`NaN` differences can't hide.
fn cached_sums(inst: &Instance) -> Vec<u64> {
    let engine = ScoringEngine::new(inst);
    let mut bits = Vec::new();
    for t in 0..inst.num_intervals() {
        for u in 0..inst.num_users() {
            bits.push(engine.competing_mass(u, IntervalId::new(t)).to_bits());
        }
    }
    for e in 0..inst.num_events() {
        let col: f64 = (0..inst.num_users()).map(|u| inst.event_interest.value(e, u)).sum();
        bits.push(col.to_bits());
    }
    bits
}

/// Number of distinct rejection arms in [`invalid_op`]; every validation
/// clause `apply` has maps to at least one.
const ARMS: usize = 28;

/// A well-formed user payload for the fixture's shape, to perturb.
fn unit_user() -> NewUser {
    NewUser {
        event_interest: vec![0.5; 4],
        competing_interest: vec![0.5; 2],
        activity: vec![0.5; 2],
        weight: None,
    }
}

/// Strategy over ops that must ALL fail validation against [`fixture`].
///
/// The mini-proptest shim has no `prop_oneof!`, so one generic draw
/// `(arm, x, y, r)` is shaped into the chosen arm by `match` — `arm`
/// selects the rejection path, `x`/`y`/`r` add in-arm variation.
fn invalid_op() -> impl Strategy<Value = DeltaOp> {
    (0usize..ARMS, 0usize..64, 0usize..64, 0u8..=100).prop_map(|(arm, x, y, r)| {
        let live = EventId::new(x % 4); // |E| = 4
                                        // Floors sit well above anything the interleaving test's valid
                                        // ops can append, so "dangling" stays dangling mid-stream.
        let dangling_event = EventId::new(16 + x % 48);
        let dangling_user = 8 + y % 56; // |U| = 2
        let unit = (r % 11) as f64 / 10.0; // valid [0, 1] cell
                                           // A value guaranteed to fail the [0, 1] range check.
        let bad_unit = match r % 4 {
            0 => 1.0 + (1 + r / 4) as f64 / 10.0,
            1 => -((1 + r / 4) as f64) / 10.0,
            2 => f64::NAN,
            _ => f64::INFINITY,
        };
        let event_at = |loc: usize, res: f64| Event::new(LocationId::new(loc), res);
        match arm {
            // -- dangling ids --------------------------------------------
            0 => DeltaOp::RemoveEvent { event: dangling_event },
            1 => DeltaOp::ShiftInterest { event: dangling_event, user: y % 2, interest: unit },
            2 => DeltaOp::ShiftInterest { event: live, user: dangling_user, interest: unit },
            3 => DeltaOp::AddConflict { a: live, b: dangling_event },
            4 => DeltaOp::AddPrecedence { before: dangling_event, after: live },
            5 => DeltaOp::RetireUsers { users: vec![dangling_user] },
            // -- out-of-range cells --------------------------------------
            6 => DeltaOp::ShiftInterest { event: live, user: y % 2, interest: bad_unit },
            7 => DeltaOp::AddEvent { event: event_at(x % 5, 1.0), interest: vec![unit, bad_unit] },
            // Resources beyond the organizer budget θ = 10, or malformed.
            8 => DeltaOp::AddEvent {
                event: event_at(x % 5, 11.0 + r as f64),
                interest: vec![0.5, 0.5],
            },
            9 => DeltaOp::AddEvent {
                event: event_at(x % 5, if r % 2 == 0 { f64::NAN } else { -1.0 }),
                interest: vec![0.5, 0.5],
            },
            10 => DeltaOp::AddUsers {
                users: vec![NewUser { activity: vec![bad_unit, 0.5], ..unit_user() }],
            },
            // -- shape mismatches ----------------------------------------
            11 => DeltaOp::AddEvent {
                event: event_at(x % 5, 1.0),
                interest: vec![0.5; x % 2], // |U| = 2
            },
            12 => DeltaOp::AddUsers {
                users: vec![NewUser {
                    event_interest: vec![0.5; 1 + x % 3], // |E| = 4
                    ..unit_user()
                }],
            },
            // Weight on an unweighted instance.
            13 => DeltaOp::AddUsers { users: vec![NewUser { weight: Some(unit), ..unit_user() }] },
            // -- batch-shape violations ----------------------------------
            14 => DeltaOp::AddUsers { users: vec![] },
            15 => DeltaOp::RetireUsers { users: vec![] },
            16 => DeltaOp::RetireUsers { users: vec![1, 0] }, // unsorted
            17 => DeltaOp::RetireUsers { users: vec![y % 2, y % 2] }, // duplicate
            18 => DeltaOp::RetireUsers { users: vec![0, 1] }, // would empty
            // -- constraint-set violations -------------------------------
            19 => DeltaOp::AddConflict { a: live, b: live }, // self
            20 => DeltaOp::AddConflict { a: EventId::new(3), b: EventId::new(0) }, // duplicate
            21 => {
                // Any pair except the installed {0, 3} is unknown.
                let pairs = [(0, 1), (1, 2), (1, 3), (0, 2)];
                let (a, b) = pairs[x % pairs.len()];
                DeltaOp::RemoveConflict { a: EventId::new(a), b: EventId::new(b) }
            }
            22 => {
                // Closing the pre-installed 0 → 1 → 2 chain into a cycle.
                let edges = [(1, 0), (2, 0), (2, 1)];
                let (before, after) = edges[x % edges.len()];
                DeltaOp::AddPrecedence { before: EventId::new(before), after: EventId::new(after) }
            }
            23 => DeltaOp::AddPrecedence { before: EventId::new(0), after: EventId::new(1) }, // dup
            24 => DeltaOp::AddPrecedence { before: live, after: live }, // self
            25 => DeltaOp::RemovePrecedence { before: EventId::new(1), after: EventId::new(0) },
            26 => DeltaOp::SetVenueCapacity { location: LocationId::new(x % 8), capacity: Some(0) },
            _ => DeltaOp::SetVenueCapacity {
                // Only location 0 has a capacity installed; clearing any
                // other is an unknown-constraint error.
                location: LocationId::new(1 + x % 7),
                capacity: None,
            },
        }
    })
}

/// A batch of 1–11 invalid ops.
fn invalid_batch(max: usize) -> impl Strategy<Value = Vec<DeltaOp>> {
    (1usize..max).prop_flat_map(|n| collection::vec(invalid_op(), n))
}

proptest! {
    /// Every op the strategy produces is rejected, and rejection has zero
    /// side effects: the serialized instance (which embeds the constraint
    /// set) is byte-identical and every cached column sum bit-identical.
    #[test]
    fn rejected_ops_leave_no_trace(ops in invalid_batch(12)) {
        let mut inst = fixture();
        let golden_json = serde_json::to_string(&inst).unwrap();
        let golden_sums = cached_sums(&inst);
        let golden = inst.clone();
        for op in &ops {
            prop_assert!(apply(&mut inst, op).is_err(), "{op:?} must fail validation");
        }
        prop_assert_eq!(&inst, &golden);
        prop_assert_eq!(serde_json::to_string(&inst).unwrap(), golden_json);
        prop_assert_eq!(cached_sums(&inst), golden_sums);
    }

    /// Interleaving rejected ops between valid ones changes nothing: the
    /// final instance equals the one produced by the valid ops alone. This
    /// is exactly the shape a write-ahead log replays — mixed accepted and
    /// rejected batches — so determinism here is what makes recovery
    /// byte-exact.
    #[test]
    fn rejected_ops_do_not_perturb_valid_ones(
        bad in invalid_batch(8),
        seed_interest in collection::vec(0u8..=10, 4),
    ) {
        let valid: Vec<DeltaOp> = vec![
            DeltaOp::ShiftInterest {
                event: EventId::new(0),
                user: 0,
                interest: seed_interest[0] as f64 / 10.0,
            },
            DeltaOp::AddEvent {
                event: Event::new(LocationId::new(2), 1.0),
                interest: vec![seed_interest[1] as f64 / 10.0, seed_interest[2] as f64 / 10.0],
            },
            DeltaOp::ShiftInterest {
                event: EventId::new(3),
                user: 1,
                interest: seed_interest[3] as f64 / 10.0,
            },
        ];

        // Reference: valid ops only.
        let mut want = fixture();
        for op in &valid {
            apply(&mut want, op).unwrap();
        }

        // Same valid ops with rejected ops interleaved round-robin.
        let mut got = fixture();
        let mut bad_iter = bad.iter().cycle();
        for op in &valid {
            apply(&mut got, bad_iter.next().unwrap()).unwrap_err();
            apply(&mut got, op).unwrap();
        }
        apply(&mut got, bad_iter.next().unwrap()).unwrap_err();

        prop_assert_eq!(&got, &want);
        prop_assert_eq!(
            serde_json::to_string(&got).unwrap(),
            serde_json::to_string(&want).unwrap()
        );
        prop_assert_eq!(cached_sums(&got), cached_sums(&want));
    }
}
