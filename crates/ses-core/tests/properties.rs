//! Property-based tests for the core substrate: the Luce-gain function,
//! scoring-engine invariants, interest-matrix layout equivalence, and
//! schedule feasibility bookkeeping.

use proptest::prelude::*;
use ses_core::ids::{EventId, IntervalId, LocationId};
use ses_core::model::{
    ActivityMatrix, CompetingEvent, DenseInterest, Event, Instance, InstanceBuilder, StorageKind,
};
use ses_core::parallel::{Threads, PAR_BLOCK};
use ses_core::schedule::Schedule;
use ses_core::scoring::utility::total_utility;
use ses_core::scoring::{gain, ScoringEngine, StaticCaches, WarmCacheState};

/// Quantized probability in [0, 1] (steps of 1/64) — avoids degenerate
/// float noise while still hitting exact 0 and 1.
fn prob() -> impl Strategy<Value = f64> {
    (0u8..=64).prop_map(|x| x as f64 / 64.0)
}

/// A small random instance: up to 6 events, 3 intervals, 5 users,
/// 4 competing events, 3 locations.
fn small_instance() -> impl Strategy<Value = Instance> {
    let dims = (1usize..=6, 1usize..=3, 1usize..=5, 0usize..=4);
    dims.prop_flat_map(|(ne, nt, nu, nc)| {
        (
            Just(ne),
            Just(nt),
            Just(nu),
            Just(nc),
            proptest::collection::vec(0usize..3, ne), // locations
            proptest::collection::vec(prob(), ne * nu), // event interest
            proptest::collection::vec(prob(), nc * nu), // competing interest
            proptest::collection::vec(prob(), nu * nt), // activity
            proptest::collection::vec(0usize..64, nc.max(1)), // competing interval picks
        )
    })
    .prop_map(|(ne, nt, nu, nc, locs, ev, cv, act, cints)| {
        let mut b = InstanceBuilder::new();
        for &l in &locs {
            b.add_event(Event::new(LocationId::new(l), 1.0));
        }
        b.add_intervals(nt);
        for c in cints.iter().take(nc) {
            b.add_competing(CompetingEvent::new(IntervalId::new(c % nt)));
        }
        b.event_interest(DenseInterest::from_raw(ne, nu, ev).unwrap())
            .competing_interest(DenseInterest::from_raw(nc, nu, cv).unwrap())
            .activity(ActivityMatrix::from_raw(nu, nt, act).unwrap())
            .resources(100.0)
            .build()
            .unwrap()
    })
}

/// An instance whose dense columns span **multiple** `PAR_BLOCK` reduction
/// blocks — the regime where the parallel user sweep actually splits work.
/// Matrices are generated from a seed with a local xorshift instead of
/// element-wise proptest vectors (thousands of entries per case).
fn wide_instance() -> impl Strategy<Value = Instance> {
    let users = PAR_BLOCK + 9..3 * PAR_BLOCK;
    (2usize..=4, 1usize..=2, users, 0usize..=3, 0u64..1_000_000).prop_map(
        |(ne, nt, nu, nc, seed)| {
            let mut x = seed | 1;
            let mut next = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            // Quantized probabilities (steps of 1/64), like `prob()`.
            let mut p = move || (next() % 65) as f64 / 64.0;
            let mut b = InstanceBuilder::new();
            for l in 0..ne {
                b.add_event(Event::new(LocationId::new(l % 3), 1.0));
            }
            b.add_intervals(nt);
            for c in 0..nc {
                b.add_competing(CompetingEvent::new(IntervalId::new(c % nt)));
            }
            b.event_interest(DenseInterest::from_fn(ne, nu, |_, _| p()))
                .competing_interest(DenseInterest::from_fn(nc, nu, |_, _| p()))
                .activity(
                    ActivityMatrix::from_raw(nu, nt, (0..nu * nt).map(|_| p()).collect()).unwrap(),
                )
                .resources(100.0)
                .build()
                .unwrap()
        },
    )
}

/// The instance with its interest matrices converted to `kind`.
fn with_storage(inst: &Instance, kind: StorageKind) -> Instance {
    let mut out = inst.clone();
    out.event_interest = inst.event_interest.convert_to(kind);
    out.competing_interest = inst.competing_interest.convert_to(kind);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Parallel `score` equals sequential `score` **bit-for-bit**, on the
    /// dense, sparse, and compressed interest layouts, at every probed
    /// thread count — the engine-level core of the `ses-parallel`
    /// differential contract.
    #[test]
    fn parallel_scores_bit_identical(inst in wide_instance(), n in 2usize..=6) {
        let sparse = with_storage(&inst, StorageKind::Sparse);
        let compressed = with_storage(&inst, StorageKind::Compressed);
        for (layout, variant) in
            [("dense", &inst), ("sparse", &sparse), ("compressed", &compressed)]
        {
            let mut seq = ScoringEngine::new(variant);
            let mut par = ScoringEngine::with_threads(variant, Threads::new(n));
            for (e, t) in variant.assignment_universe() {
                let a = seq.assignment_score(e, t);
                let b = par.assignment_score(e, t);
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "{} {:?}@{:?} t{}: {} vs {}", layout, e, t, n, a, b
                );
            }
            prop_assert_eq!(seq.stats(), par.stats(), "{} stats diverged", layout);
        }
    }

    /// `apply`/`unapply` round-trips under the **parallel** engine leave
    /// every score bit-identical (extends the sequential
    /// `apply_unapply_roundtrip` / `stale_scores_upper_bound` family to the
    /// threaded mass-update path, including the residue snapping).
    #[test]
    fn parallel_apply_unapply_leaves_scores_unchanged(
        inst in wide_instance(),
        n in 2usize..=6,
        pick in 0usize..64,
    ) {
        let mut eng = ScoringEngine::with_threads(&inst, Threads::new(n));
        let e = EventId::new(pick % inst.num_events());
        let t = IntervalId::new((pick / 7) % inst.num_intervals());
        let before: Vec<u64> = inst
            .assignment_universe()
            .map(|(e, t)| eng.assignment_score(e, t).to_bits())
            .collect();
        eng.apply(e, t);
        eng.unapply(e, t);
        let after: Vec<u64> = inst
            .assignment_universe()
            .map(|(e, t)| eng.assignment_score(e, t).to_bits())
            .collect();
        prop_assert_eq!(before, after, "round-trip perturbed a score bit (t{})", n);
    }

    /// Stale scores remain upper bounds under the parallel engine — the
    /// INC/HOR-I pruning invariant is thread-count independent.
    #[test]
    fn parallel_stale_scores_upper_bound(inst in wide_instance(), pick in 0usize..64) {
        let mut engine = ScoringEngine::with_threads(&inst, Threads::new(4));
        let e_applied = EventId::new(pick % inst.num_events());
        let t = IntervalId::new((pick / 7) % inst.num_intervals());
        let stale: Vec<f64> = (0..inst.num_events())
            .map(|e| engine.assignment_score(EventId::new(e), t))
            .collect();
        engine.apply(e_applied, t);
        for (e, bound) in stale.iter().enumerate() {
            if e == e_applied.index() {
                continue;
            }
            let fresh = engine.assignment_score(EventId::new(e), t);
            prop_assert!(
                fresh <= bound + 1e-12,
                "event {}: fresh {} exceeds stale bound {}", e, fresh, bound
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `gain` stays within [0, 1] for probability-scale inputs.
    #[test]
    fn gain_bounded(c in prob(), m in 0.0..20.0f64, mu in prob()) {
        let g = gain(c, m, mu);
        prop_assert!((0.0..=1.0).contains(&g), "gain({c}, {m}, {mu}) = {g}");
    }

    /// Monotonicity behind Proposition 1: gain never increases as the
    /// scheduled mass grows.
    #[test]
    fn gain_monotone_in_mass(c in prob(), m in 0.0..10.0f64, dm in prob(), mu in prob()) {
        let before = gain(c, m, mu);
        let after = gain(c, m + dm, mu);
        prop_assert!(after <= before + 1e-12, "gain must not grow: {before} -> {after}");
    }

    /// Zero interest contributes zero gain regardless of masses.
    #[test]
    fn gain_zero_interest(c in prob(), m in 0.0..10.0f64) {
        prop_assert_eq!(gain(c, m, 0.0), 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Telescoping: the sum of assignment scores at selection time equals
    /// the independently evaluated Ω(S), for any feasible selection order.
    #[test]
    fn scores_telescope_to_utility(inst in small_instance(), order_seed in 0u64..1000) {
        let mut engine = ScoringEngine::new(&inst);
        let mut schedule = Schedule::new(&inst);
        let mut total = 0.0;
        // Deterministic pseudo-random assignment order from the seed.
        let mut x = order_seed;
        for _ in 0..inst.num_events() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let e = EventId::new((x >> 33) as usize % inst.num_events());
            let t = IntervalId::new((x >> 17) as usize % inst.num_intervals());
            if schedule.is_valid_assignment(&inst, e, t) {
                total += engine.assignment_score(e, t);
                engine.apply(e, t);
                schedule.assign(&inst, e, t).unwrap();
            }
        }
        let omega = total_utility(&inst, &schedule);
        prop_assert!((omega - total).abs() < 1e-9, "Ω = {omega}, Σ scores = {total}");
    }

    /// All three interest layouts produce **bit-identical** scores — zeros
    /// contribute exactly nothing to the blocked reduction (no -0.0 in
    /// probability data), so skipping them (sparse) or resolving dictionary
    /// codes (compressed) reproduces the dense partial sums bit for bit.
    #[test]
    fn dense_sparse_equivalence(inst in small_instance()) {
        let mut de = ScoringEngine::new(&inst);
        for kind in [StorageKind::Sparse, StorageKind::Compressed] {
            let variant = with_storage(&inst, kind);
            let mut se = ScoringEngine::new(&variant);
            for (e, t) in inst.assignment_universe() {
                let a = de.assignment_score(e, t);
                let b = se.assignment_score(e, t);
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "{:?} {:?}: dense {} vs {} {}", e, t, a, kind, b
                );
            }
        }
    }

    /// Stale scores upper-bound refreshed scores after any apply
    /// (the engine-level fact INC's bound pruning relies on).
    #[test]
    fn stale_scores_upper_bound(inst in small_instance(), pick in 0usize..64) {
        let mut engine = ScoringEngine::new(&inst);
        let e_applied = EventId::new(pick % inst.num_events());
        let t = IntervalId::new((pick / 7) % inst.num_intervals());

        let stale: Vec<f64> = (0..inst.num_events())
            .map(|e| engine.assignment_score(EventId::new(e), t))
            .collect();
        engine.apply(e_applied, t);
        for (e, bound) in stale.iter().enumerate() {
            if e == e_applied.index() {
                continue;
            }
            let fresh = engine.assignment_score(EventId::new(e), t);
            prop_assert!(
                fresh <= bound + 1e-12,
                "event {e}: fresh {fresh} exceeds stale bound {bound}"
            );
        }
    }

    /// apply/unapply round-trips leave every score bit-identical.
    #[test]
    fn apply_unapply_roundtrip(inst in small_instance()) {
        let mut engine = ScoringEngine::new(&inst);
        let e = EventId::new(0);
        let t = IntervalId::new(0);
        let before: Vec<f64> = inst
            .assignment_universe()
            .map(|(e, t)| engine.assignment_score(e, t))
            .collect();
        engine.apply(e, t);
        engine.unapply(e, t);
        let after: Vec<f64> = inst
            .assignment_universe()
            .map(|(e, t)| engine.assignment_score(e, t))
            .collect();
        for (i, (a, b)) in before.iter().zip(&after).enumerate() {
            prop_assert!((a - b).abs() < 1e-12, "score {i} drifted: {a} -> {b}");
        }
    }

    /// The schedule's incremental feasibility bookkeeping always agrees
    /// with a from-scratch re-check.
    #[test]
    fn schedule_bookkeeping_consistent(inst in small_instance(), seed in 0u64..1000) {
        let mut schedule = Schedule::new(&inst);
        let mut x = seed;
        for step in 0..12 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let e = EventId::new((x >> 33) as usize % inst.num_events());
            let t = IntervalId::new((x >> 17) as usize % inst.num_intervals());
            if step % 3 == 2 && schedule.is_scheduled(e) {
                schedule.unassign(&inst, e).unwrap();
            } else if schedule.is_valid_assignment(&inst, e, t) {
                schedule.assign(&inst, e, t).unwrap();
            }
            prop_assert!(schedule.verify_feasible(&inst).is_ok());
        }
        // No event is double-booked; occupancy matches assignments.
        let mut seen = 0;
        for t in 0..inst.num_intervals() {
            seen += schedule.events_at(IntervalId::new(t)).len();
        }
        prop_assert_eq!(seen, schedule.len());
    }

    /// The engine's cached `share(u,t)` table stays **bitwise** equal to a
    /// recompute from the raw masses (`m̂/(C+m̂)` with the residue clamp)
    /// through arbitrary apply/unapply churn — on the dense, sparse, and
    /// compressed layouts, at 1, 2, and 8 worker threads. This is the invariant that
    /// lets the fused kernel drop a division per user without moving a bit.
    #[test]
    fn share_cache_matches_recompute_after_churn(inst in small_instance(), seed in 0u64..1000) {
        const MASS_SNAP: f64 = 1e-9;
        let sparse = with_storage(&inst, StorageKind::Sparse);
        let compressed = with_storage(&inst, StorageKind::Compressed);
        for (layout, variant) in
            [("dense", &inst), ("sparse", &sparse), ("compressed", &compressed)]
        {
            for threads in [1usize, 2, 8] {
                let mut engine = ScoringEngine::with_threads(variant, Threads::new(threads));
                let mut applied: Vec<(EventId, IntervalId)> = Vec::new();
                let mut x = seed | 1;
                for _ in 0..14 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let e = EventId::new((x >> 33) as usize % variant.num_events());
                    let t = IntervalId::new((x >> 17) as usize % variant.num_intervals());
                    if let Some(pos) = applied.iter().position(|&(ae, at)| ae == e && at == t) {
                        engine.unapply(e, t);
                        applied.swap_remove(pos);
                    } else {
                        engine.apply(e, t);
                        applied.push((e, t));
                    }
                    for u in 0..variant.num_users() {
                        for ti in 0..variant.num_intervals() {
                            let interval = IntervalId::new(ti);
                            let m = engine.scheduled_mass(u, interval);
                            let c = engine.competing_mass(u, interval);
                            let m_hat = if m < MASS_SNAP { 0.0 } else { m };
                            let tot = c + m_hat;
                            let want = if tot > 0.0 { m_hat / tot } else { 0.0 };
                            prop_assert_eq!(
                                engine.cached_share(u, interval).to_bits(),
                                want.to_bits(),
                                "{}/t{}: share(u{}, t{}) drifted", layout, threads, u, ti
                            );
                        }
                    }
                }
            }
        }
    }

    /// `score_bound` dominates the true assignment score at every reachable
    /// schedule state, on all three layouts — the soundness precondition of the
    /// bound-first gate (a skipped candidate can never have been the argmax).
    #[test]
    fn score_bound_is_sound(inst in small_instance(), seed in 0u64..1000) {
        let sparse = with_storage(&inst, StorageKind::Sparse);
        let compressed = with_storage(&inst, StorageKind::Compressed);
        for (layout, variant) in
            [("dense", &inst), ("sparse", &sparse), ("compressed", &compressed)]
        {
            let mut engine = ScoringEngine::new(variant);
            let mut schedule = Schedule::new(variant);
            let mut x = seed | 1;
            for _ in 0..4 {
                for (e, t) in variant.assignment_universe() {
                    let score = engine.assignment_score(e, t);
                    let bound = engine.score_bound(e, t);
                    prop_assert!(
                        bound >= score,
                        "{}: bound {} < score {} for {:?}@{:?}", layout, bound, score, e, t
                    );
                }
                // Advance the schedule state with one random valid apply.
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let e = EventId::new((x >> 33) as usize % variant.num_events());
                let t = IntervalId::new((x >> 17) as usize % variant.num_intervals());
                if schedule.is_valid_assignment(variant, e, t) {
                    schedule.assign(variant, e, t).unwrap();
                    engine.apply(e, t);
                }
            }
        }
    }

    /// Utility is always non-negative and bounded by the weighted user mass
    /// (each user contributes at most Σ_t σ(u,t) ≤ |T|).
    #[test]
    fn utility_bounds(inst in small_instance()) {
        let mut schedule = Schedule::new(&inst);
        for e in 0..inst.num_events() {
            for t in 0..inst.num_intervals() {
                let (e, t) = (EventId::new(e), IntervalId::new(t));
                if schedule.is_valid_assignment(&inst, e, t) {
                    schedule.assign(&inst, e, t).unwrap();
                    break;
                }
            }
        }
        let omega = total_utility(&inst, &schedule);
        prop_assert!(omega >= 0.0);
        let cap = inst.num_users() as f64 * inst.num_intervals() as f64;
        prop_assert!(omega <= cap + 1e-9, "Ω = {omega} exceeds cap {cap}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cross-backend delta-op churn: the same random op sequence (interest
    /// drift, event arrivals/cancellations, user joins/retirements) applied
    /// to the dense, sparse, and compressed copies of one instance keeps
    /// all three backends value-identical (converted back to dense) and
    /// their scoring engines **bit-identical** after every op.
    #[test]
    fn backends_stay_identical_under_delta_churn(inst in small_instance(), seed in 0u64..1000) {
        use ses_core::delta::{self, DeltaOp, NewUser};

        let mut dense = inst.clone();
        let mut sparse = with_storage(&inst, StorageKind::Sparse);
        let mut compressed = with_storage(&inst, StorageKind::Compressed);

        let mut x = seed | 1;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 16
        };
        for step in 0..10 {
            let nu = dense.num_users();
            let ne = dense.num_events();
            let nc = dense.competing_interest.num_items();
            let nt = dense.num_intervals();
            let q = |v: u64| (v % 65) as f64 / 64.0;
            let op = match next() % 5 {
                0 | 1 => DeltaOp::ShiftInterest {
                    event: EventId::new(next() as usize % ne),
                    user: next() as usize % nu,
                    interest: q(next()),
                },
                2 => DeltaOp::AddEvent {
                    event: Event::new(LocationId::new(next() as usize % 3), 1.0),
                    interest: (0..nu).map(|_| q(next())).collect(),
                },
                3 if ne > 1 => DeltaOp::RemoveEvent { event: EventId::new(next() as usize % ne) },
                _ => DeltaOp::AddUsers {
                    users: vec![NewUser {
                        event_interest: (0..ne).map(|_| q(next())).collect(),
                        competing_interest: (0..nc).map(|_| q(next())).collect(),
                        activity: (0..nt).map(|_| q(next())).collect(),
                        weight: None,
                    }],
                },
            };
            delta::apply(&mut dense, &op).expect("op valid on dense");
            delta::apply(&mut sparse, &op).expect("op valid on sparse");
            delta::apply(&mut compressed, &op).expect("op valid on compressed");

            // Layouts survive mutation (no silent densification)...
            prop_assert_eq!(sparse.event_interest.storage_kind(), StorageKind::Sparse);
            prop_assert_eq!(compressed.event_interest.storage_kind(), StorageKind::Compressed);
            // ...hold identical values...
            prop_assert_eq!(
                &with_storage(&sparse, StorageKind::Dense), &dense,
                "step {}: sparse drifted from dense", step
            );
            prop_assert_eq!(
                &with_storage(&compressed, StorageKind::Dense), &dense,
                "step {}: compressed drifted from dense", step
            );
            // ...and score bit-identically.
            let mut d = ScoringEngine::new(&dense);
            let mut s = ScoringEngine::new(&sparse);
            let mut c = ScoringEngine::new(&compressed);
            for (e, t) in dense.assignment_universe() {
                let a = d.assignment_score(e, t);
                prop_assert_eq!(a.to_bits(), s.assignment_score(e, t).to_bits());
                prop_assert_eq!(a.to_bits(), c.assignment_score(e, t).to_bits());
            }
        }
    }
}

proptest! {
    /// The durable-snapshot round trip of the engine's warm state:
    /// `into_comp_mass` / `into_warm_parts` → versioned [`WarmCacheState`]
    /// → JSON bytes → `from_state` → `from_comp_mass` /
    /// `from_warm_parts` must be the identity, bit for bit — both on the
    /// cache vectors themselves and on every score the rebuilt engine
    /// produces. This is what lets a restored session keep the repairer's
    /// warm caches without any reliance on in-memory layout.
    #[test]
    fn warm_cache_state_roundtrips_bit_for_bit(inst in small_instance()) {
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<u64>>();
        let (comp_mass, caches) = ScoringEngine::new(&inst).into_warm_parts();
        let state = caches.to_state(&comp_mass);
        prop_assert_eq!(state.version, WarmCacheState::VERSION);

        let json = serde_json::to_string(&state).unwrap();
        let back: WarmCacheState = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &state);
        prop_assert_eq!(bits(&back.comp_mass), bits(&comp_mass));

        let (comp2, caches2) =
            StaticCaches::from_state(back, inst.num_users(), inst.num_intervals()).unwrap();
        prop_assert_eq!(bits(&comp2), bits(&comp_mass));

        // The three rebuild paths — original parts, round-tripped parts,
        // and comp-mass-only (static caches recomputed) — score every
        // assignment with identical bits and extract identical tables.
        let comp3 = comp2.clone();
        let mut orig = ScoringEngine::from_warm_parts(
            &inst, comp_mass, caches, Threads::sequential());
        let mut warm = ScoringEngine::from_warm_parts(
            &inst, comp2, caches2, Threads::sequential());
        let mut cold = ScoringEngine::from_comp_mass(&inst, comp3, Threads::sequential());
        for (e, t) in inst.assignment_universe() {
            let a = orig.assignment_score(e, t);
            prop_assert_eq!(a.to_bits(), warm.assignment_score(e, t).to_bits());
            prop_assert_eq!(a.to_bits(), cold.assignment_score(e, t).to_bits());
        }
        prop_assert_eq!(bits(&orig.into_comp_mass()), bits(&warm.into_comp_mass()));
    }

    /// `from_state` refuses version and shape mismatches instead of
    /// rebuilding an engine around tables that do not fit the instance.
    #[test]
    fn warm_cache_state_rejects_mismatches(inst in small_instance()) {
        let (comp_mass, caches) = ScoringEngine::new(&inst).into_warm_parts();
        let (users, intervals) = (inst.num_users(), inst.num_intervals());

        let mut future = caches.to_state(&comp_mass);
        future.version = WarmCacheState::VERSION + 1;
        prop_assert!(StaticCaches::from_state(future, users, intervals)
            .unwrap_err()
            .contains("version"));

        let mut short = caches.to_state(&comp_mass);
        short.comp_mass.push(0.5);
        prop_assert!(StaticCaches::from_state(short, users, intervals)
            .unwrap_err()
            .contains("comp_mass"));

        prop_assert!(
            StaticCaches::from_state(caches.to_state(&comp_mass), users + 1, intervals).is_err()
        );
    }
}
