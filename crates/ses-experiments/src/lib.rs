//! # ses-experiments — the figure-regeneration harness
//!
//! For **every table and figure** of the paper's evaluation (§4) this crate
//! provides a runner producing the same rows/series the paper plots:
//!
//! | Paper artifact | Runner |
//! |----------------|--------|
//! | Fig 5 (utility/computations/time vs `k`) | [`figures::fig5::run`] |
//! | Fig 6 (utility/time vs `|T|`)            | [`figures::fig6::run`] |
//! | Fig 7 (utility/time vs `|E|`)            | [`figures::fig7::run`] |
//! | Fig 8 (time vs `|U|`, two `|T|` settings)| [`figures::fig8::run`] |
//! | Fig 9 (utility/time vs locations)        | [`figures::fig9::run`] |
//! | Fig 10a (worst case w.r.t. `k`, `|T|`)   | [`figures::fig10::run_worst_case`] |
//! | Fig 10b (ALG vs INC search space)        | [`figures::fig10::run_search_space`] |
//! | §4.2.8 quality summary                   | [`figures::summary::run`] |
//! | Table 1 (parameter space)                | `ses_datasets::params::table1` |
//! | Dynamic op streams (beyond the paper)    | [`figures::dynamic::run`] |
//! | Constraint-layer overhead (beyond paper) | [`figures::constrained::run`] |
//!
//! Runs are laptop-scaled via [`runner::ExperimentConfig`] (the paper used a
//! Xeon with up to 1M users and multi-hour budgets); EXPERIMENTS.md records
//! the paper-vs-measured comparison for each artifact.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;
pub mod report;
pub mod runner;

pub use report::{FigureReport, Metric, RunRecord};
pub use runner::{run_lineup, standard_kinds, ExperimentConfig};
