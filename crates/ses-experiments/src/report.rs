//! Result records and report rendering for the experiment harness.
//!
//! Every figure runner produces a [`FigureReport`]: a flat list of
//! [`RunRecord`]s (one per dataset × sweep-point × algorithm) that can be
//! rendered as the text tables EXPERIMENTS.md quotes, or dumped as JSON/CSV
//! for plotting.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One measured run: a single `(figure, dataset, sweep point, algorithm)`
/// cell of a paper plot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Figure id, e.g. `"fig5"`.
    pub figure: String,
    /// Dataset name (`Meetup`, `Concerts`, `Unf`, `Zip`).
    pub dataset: String,
    /// Algorithm name (`ALG`, `INC`, …).
    pub algorithm: String,
    /// Name of the swept parameter (`k`, `|T|`, `|E|`, `|U|`, `locations`).
    pub x_label: String,
    /// Swept parameter value.
    pub x: f64,
    /// Requested schedule size.
    pub k: usize,
    /// Instance shape: `|E|`.
    pub num_events: usize,
    /// Instance shape: `|T|`.
    pub num_intervals: usize,
    /// Instance shape: `|U|`.
    pub num_users: usize,
    /// Total utility Ω(S).
    pub utility: f64,
    /// The paper's "number of computations" (user operations inside score
    /// evaluations).
    pub computations: u64,
    /// Assignments examined (Fig 10b's metric).
    pub examined: u64,
    /// Wall-clock milliseconds.
    pub time_ms: f64,
    /// Resident interest bytes (the scale figure's metric; zero where the
    /// figure does not measure memory). Defaulted so reports recorded
    /// before the field existed still deserialize.
    #[serde(default)]
    pub heap_bytes: u64,
}

/// The metric a rendered table reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Total utility Ω(S) (Figs 5a–d, 6a–d, 7a–b, 9a).
    Utility,
    /// Score-computation user-ops (Figs 5e–h).
    Computations,
    /// Wall time (Figs 5i–l, 6e–h, 7c–d, 8, 9b, 10a).
    Time,
    /// Assignments examined (Fig 10b).
    Examined,
    /// Resident interest bytes (the scale figure).
    Memory,
}

impl Metric {
    /// Column header / display name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Utility => "Utility",
            Metric::Computations => "Computations",
            Metric::Time => "Time (ms)",
            Metric::Examined => "Assignments examined",
            Metric::Memory => "Heap (bytes)",
        }
    }

    /// Extracts the metric from a record.
    pub fn of(self, r: &RunRecord) -> f64 {
        match self {
            Metric::Utility => r.utility,
            Metric::Computations => r.computations as f64,
            Metric::Time => r.time_ms,
            Metric::Examined => r.examined as f64,
            Metric::Memory => r.heap_bytes as f64,
        }
    }
}

/// Tolerant sweep-point comparison: two x values are the same sweep point
/// when they agree to within a relative 1e-9 (absolute near zero). Exact
/// `f64 ==` would lose lookups whose x was recomputed through float
/// arithmetic — `0.1 + 0.2` vs `0.3` style misses.
pub fn x_eq(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// All measurements of one figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureReport {
    /// Figure id, e.g. `"fig5"`.
    pub id: String,
    /// Human title, e.g. `"Varying the number of scheduled events k"`.
    pub title: String,
    /// The metrics this figure plots in the paper.
    pub metrics: Vec<Metric>,
    /// All cells.
    pub records: Vec<RunRecord>,
}

impl FigureReport {
    /// Distinct dataset names, in insertion order.
    pub fn datasets(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for r in &self.records {
            if seen.insert(r.dataset.clone()) {
                out.push(r.dataset.clone());
            }
        }
        out
    }

    /// Distinct algorithm names, in insertion order.
    pub fn algorithms(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for r in &self.records {
            if seen.insert(r.algorithm.clone()) {
                out.push(r.algorithm.clone());
            }
        }
        out
    }

    /// Distinct sweep values, ascending ([`x_eq`]-tolerant dedup).
    pub fn xs(&self, dataset: &str) -> Vec<f64> {
        let mut xs: Vec<f64> =
            self.records.iter().filter(|r| r.dataset == dataset).map(|r| r.x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup_by(|a, b| x_eq(*a, *b));
        xs
    }

    /// Looks up one cell. The sweep value matches under [`x_eq`], so x
    /// values re-derived through float arithmetic (e.g. a `dim_scale`
    /// product) still find their record.
    pub fn cell(&self, dataset: &str, algorithm: &str, x: f64) -> Option<&RunRecord> {
        self.records
            .iter()
            .find(|r| r.dataset == dataset && r.algorithm == algorithm && x_eq(r.x, x))
    }

    /// The series `(x, metric)` for one dataset & algorithm, ascending x.
    pub fn series(&self, dataset: &str, algorithm: &str, metric: Metric) -> Vec<(f64, f64)> {
        let mut pts: Vec<(f64, f64)> = self
            .records
            .iter()
            .filter(|r| r.dataset == dataset && r.algorithm == algorithm)
            .map(|r| (r.x, metric.of(r)))
            .collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
        pts
    }

    /// Renders one `dataset × metric` table (rows = sweep values,
    /// columns = algorithms) in the style the paper's plots tabulate.
    pub fn table(&self, dataset: &str, metric: Metric) -> String {
        let algos = self.algorithms();
        let x_label = self
            .records
            .iter()
            .find(|r| r.dataset == dataset)
            .map(|r| r.x_label.clone())
            .unwrap_or_else(|| "x".into());

        let mut out = String::new();
        let _ = writeln!(out, "## {} — {} ({})", self.id, metric.name(), dataset);
        let _ = write!(out, "{:>10}", x_label);
        for a in &algos {
            let _ = write!(out, " {a:>14}");
        }
        out.push('\n');
        for x in self.xs(dataset) {
            let _ = write!(out, "{x:>10}");
            for a in &algos {
                match self.cell(dataset, a, x) {
                    Some(r) => {
                        let v = metric.of(r);
                        if metric == Metric::Utility {
                            let _ = write!(out, " {v:>14.4}");
                        } else {
                            let _ = write!(out, " {v:>14.1}");
                        }
                    }
                    None => {
                        let _ = write!(out, " {:>14}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders every `dataset × metric` table of the figure.
    pub fn render(&self) -> String {
        let mut out = format!("# {} — {}\n\n", self.id, self.title);
        for metric in &self.metrics {
            for dataset in self.datasets() {
                out.push_str(&self.table(&dataset, *metric));
                out.push('\n');
            }
        }
        out
    }

    /// Serializes the full report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Renders the records as CSV (one row per cell, all metrics).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "figure,dataset,algorithm,x_label,x,k,num_events,num_intervals,num_users,\
             utility,computations,examined,time_ms,heap_bytes\n",
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                r.figure,
                r.dataset,
                r.algorithm,
                r.x_label,
                r.x,
                r.k,
                r.num_events,
                r.num_intervals,
                r.num_users,
                r.utility,
                r.computations,
                r.examined,
                r.time_ms,
                r.heap_bytes
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(dataset: &str, alg: &str, x: f64, utility: f64) -> RunRecord {
        RunRecord {
            figure: "figX".into(),
            dataset: dataset.into(),
            algorithm: alg.into(),
            x_label: "k".into(),
            x,
            // Round — a plain `as usize` cast truncates (x = 2.9 → k = 2).
            k: x.round() as usize,
            num_events: 10,
            num_intervals: 5,
            num_users: 100,
            utility,
            computations: 1000,
            examined: 50,
            time_ms: 1.5,
            heap_bytes: 0,
        }
    }

    fn sample() -> FigureReport {
        FigureReport {
            id: "figX".into(),
            title: "test".into(),
            metrics: vec![Metric::Utility, Metric::Time],
            records: vec![
                record("Unf", "ALG", 50.0, 1.0),
                record("Unf", "HOR", 50.0, 0.9),
                record("Unf", "ALG", 100.0, 2.0),
                record("Unf", "HOR", 100.0, 1.9),
                record("Zip", "ALG", 50.0, 3.0),
            ],
        }
    }

    #[test]
    fn datasets_and_algorithms_deduplicate() {
        let rep = sample();
        assert_eq!(rep.datasets(), vec!["Unf", "Zip"]);
        assert_eq!(rep.algorithms(), vec!["ALG", "HOR"]);
    }

    #[test]
    fn series_sorted_by_x() {
        let rep = sample();
        let s = rep.series("Unf", "ALG", Metric::Utility);
        assert_eq!(s, vec![(50.0, 1.0), (100.0, 2.0)]);
    }

    #[test]
    fn table_handles_missing_cells() {
        let rep = sample();
        let t = rep.table("Zip", Metric::Utility);
        assert!(t.contains("ALG"));
        assert!(t.contains('-'), "HOR has no Zip cell: {t}");
    }

    #[test]
    fn render_covers_all_metric_dataset_pairs() {
        let rep = sample();
        let r = rep.render();
        assert!(r.contains("Utility (Unf)"));
        assert!(r.contains("Time (ms) (Zip)"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rep = sample();
        let csv = rep.to_csv();
        assert_eq!(csv.lines().count(), 1 + rep.records.len());
        assert!(csv.starts_with("figure,dataset"));
    }

    #[test]
    fn json_roundtrip() {
        let rep = sample();
        let back: FigureReport = serde_json::from_str(&rep.to_json()).unwrap();
        assert_eq!(back.records.len(), rep.records.len());
    }

    /// Regression: `cell`/`xs` lookups must survive x values recomputed
    /// through float arithmetic (exact `f64 ==` loses `0.1 + 0.2` vs `0.3`).
    #[test]
    fn cell_lookup_is_float_tolerant() {
        let mut rep = sample();
        rep.records.push(record("Unf", "ALG", 0.1 + 0.2, 7.0));
        let hit = rep.cell("Unf", "ALG", 0.3).expect("tolerant lookup must hit");
        assert_eq!(hit.utility, 7.0);
        // xs() must not report the recomputed value as a second sweep point.
        rep.records.push(record("Unf", "HOR", 0.3, 6.0));
        let xs = rep.xs("Unf");
        assert_eq!(xs.iter().filter(|&&x| x_eq(x, 0.3)).count(), 1);
        // Distinct points stay distinct.
        assert!(!x_eq(50.0, 100.0));
        assert!(rep.cell("Unf", "ALG", 50.0).is_some());
    }

    #[test]
    fn test_record_k_rounds_instead_of_truncating() {
        let r = record("Unf", "ALG", 2.9, 1.0);
        assert_eq!(r.k, 3, "k must round, not truncate");
    }

    #[test]
    fn metric_extraction() {
        let r = record("Unf", "ALG", 1.0, 9.0);
        assert_eq!(Metric::Utility.of(&r), 9.0);
        assert_eq!(Metric::Computations.of(&r), 1000.0);
        assert_eq!(Metric::Examined.of(&r), 50.0);
        assert_eq!(Metric::Time.of(&r), 1.5);
    }
}
