//! **Figure 7** — varying the number of candidate events `|E|`
//! (utility 7a–b, time 7c–d) with `k = 100`, `|T| = 150`.
//!
//! The paper presents Concerts and Unf (Meetup and Zip "are similar to
//! Concerts"); we run the same pair. Since `k < |T|`, HOR-I is identical to
//! HOR and the paper omits it — we follow suit.

use crate::report::{FigureReport, Metric};
use crate::runner::{par_rows, run_lineup_threaded, ExperimentConfig};
use ses_algorithms::SchedulerKind;
use ses_datasets::Dataset;

/// Swept `|E|` values.
pub fn sweep(config: &ExperimentConfig) -> Vec<usize> {
    if config.quick {
        vec![100, 300, 500]
    } else {
        vec![100, 300, 500, 1000]
    }
}

/// The fixed `k` of this figure.
pub const K: usize = 100;
/// The fixed `|T|` of this figure.
pub const INTERVALS: usize = 150;

/// Runs Figure 7.
pub fn run(config: &ExperimentConfig) -> FigureReport {
    // k < |T| ⇒ HOR-I ≡ HOR: the paper's lineup drops HOR-I here.
    let kinds = vec![
        SchedulerKind::Alg,
        SchedulerKind::Inc,
        SchedulerKind::Hor,
        SchedulerKind::Top,
        SchedulerKind::Rand(0),
    ];
    let k = config.dim(K);
    let intervals = config.dim(INTERVALS);
    let mut jobs = Vec::new();
    for dataset in [Dataset::Concerts, Dataset::Unf] {
        for &e in &config.scaled_sweep(&sweep(config)) {
            jobs.push((dataset, e));
        }
    }
    let records = par_rows(config.row_threads(), &jobs, |&(dataset, e)| {
        let ee = config.dim(e);
        let inst = dataset.build(config.num_users, ee, intervals, config.seed ^ (e as u64));
        run_lineup_threaded(
            "fig7",
            dataset.name(),
            "|E|",
            e as f64,
            &inst,
            k,
            &kinds,
            config.scheduler_threads(),
        )
    });
    FigureReport {
        id: "fig7".into(),
        title: "Varying the number of candidate events |E| (k = 100, |T| = 150)".into(),
        metrics: vec![Metric::Utility, Metric::Time],
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_lineup;

    /// §4.2.3: greedy utility grows (more options) while RAND stagnates or
    /// degrades as |E| grows.
    #[test]
    fn more_candidates_help_greedy_not_rand() {
        let kinds = [SchedulerKind::Hor, SchedulerKind::Rand(0)];
        let mut hor = Vec::new();
        for e in [30usize, 120] {
            let inst = Dataset::Concerts.build(80, e, 10, 5);
            let recs = run_lineup("fig7", "Concerts", "|E|", e as f64, &inst, 8, &kinds);
            hor.push(recs[0].utility);
        }
        assert!(hor[1] >= hor[0], "HOR should benefit from more candidates: {hor:?}");
    }
}
