//! **Figure 5** — varying the number of scheduled events `k`
//! (utility 5a–d, computations 5e–h, time 5i–l) on all four datasets.
//!
//! Per Table 1 the other dimensions track `k`: `|E| = 5k`, `|T| = 3k/2`.

use crate::report::{FigureReport, Metric};
use crate::runner::{par_rows, run_lineup_threaded, standard_kinds, ExperimentConfig};
use ses_datasets::Dataset;

/// The swept `k` values (quick mode truncates the heaviest points).
pub fn sweep(config: &ExperimentConfig) -> Vec<usize> {
    if config.quick {
        vec![50, 100, 200]
    } else {
        vec![50, 100, 200, 500]
    }
}

/// Runs Figure 5. Sweep rows fan out across `config.threads` workers; the
/// report is byte-identical for every width (rows stay in input order).
pub fn run(config: &ExperimentConfig) -> FigureReport {
    let kinds = standard_kinds();
    let mut jobs = Vec::new();
    // Dedup after scaling: at small dim_scale two k values can collapse to
    // the same scheduled size, which would collide as duplicate x points.
    for dataset in Dataset::ALL {
        for &k in &config.scaled_sweep(&sweep(config)) {
            jobs.push((dataset, k));
        }
    }
    let records = par_rows(config.row_threads(), &jobs, |&(dataset, k)| {
        let kk = config.dim(k);
        let inst =
            dataset.build(config.num_users, 5 * kk, (3 * kk / 2).max(1), config.seed ^ (k as u64));
        run_lineup_threaded(
            "fig5",
            dataset.name(),
            "k",
            k as f64,
            &inst,
            kk,
            &kinds,
            config.scheduler_threads(),
        )
    });
    FigureReport {
        id: "fig5".into(),
        title: "Varying the number of scheduled events k (|E| = 5k, |T| = 3k/2)".into(),
        metrics: vec![Metric::Utility, Metric::Computations, Metric::Time],
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_lineup;

    #[test]
    fn smoke_run_shapes() {
        let mut config = ExperimentConfig::smoke();
        config.num_users = 60;
        // Only the smallest sweep point for the smoke test.
        let kinds = standard_kinds();
        let inst = Dataset::Unf.build(config.num_users, 100, 30, 1);
        let recs = run_lineup("fig5", "Unf", "k", 20.0, &inst, 20, &kinds);
        assert_eq!(recs.len(), kinds.len());

        let get = |name: &str| recs.iter().find(|r| r.algorithm == name).unwrap();
        // The headline orderings of Figs 5e–h:
        assert!(get("ALG").computations >= get("INC").computations);
        assert!(get("ALG").computations >= get("HOR").computations);
        assert!(get("TOP").computations <= get("HOR-I").computations);
        // INC ≡ ALG utility (Prop. 3); HOR ≥ RAND in utility on any
        // non-degenerate instance.
        assert!((get("ALG").utility - get("INC").utility).abs() < 1e-9);
        assert!(get("HOR").utility >= get("RAND").utility);
    }
}
