//! **Figure 10** — (a) the HOR/HOR-I worst case w.r.t. `k` and `|T|`;
//! (b) the ALG-vs-INC search space (assignments examined).

use crate::report::{FigureReport, Metric};
use crate::runner::{par_rows, run_lineup_threaded, ExperimentConfig};
use ses_algorithms::SchedulerKind;
use ses_datasets::Dataset;

/// The fixed `k` of both sub-figures.
pub const K: usize = 100;

/// Runs Figure 10a: execution time on all four datasets at the horizontal
/// algorithms' worst case `|T| = 99` (`k mod |T| = 1`, Propositions 5 & 7).
pub fn run_worst_case(config: &ExperimentConfig) -> FigureReport {
    let kinds = vec![
        SchedulerKind::Alg,
        SchedulerKind::Inc,
        SchedulerKind::Hor,
        SchedulerKind::HorI,
        SchedulerKind::Top,
    ];
    // Preserve the worst-case relation k mod |T| = 1 under scaling.
    let k = config.dim(K);
    let intervals = (k - 1).max(1);
    let records = par_rows(config.row_threads(), &Dataset::ALL, |&dataset| {
        let inst = dataset.build(config.num_users, 5 * k, intervals, config.seed ^ 0x10A);
        run_lineup_threaded(
            "fig10a",
            dataset.name(),
            "worst-case",
            0.0,
            &inst,
            k,
            &kinds,
            config.scheduler_threads(),
        )
    });
    FigureReport {
        id: "fig10a".into(),
        title: "HOR & HOR-I worst case w.r.t. k and |T| (k = 100, |T| = 99)".into(),
        metrics: vec![Metric::Time, Metric::Computations],
        records,
    }
}

/// The nine configurations of Fig 10b: `k ∈ {50, 100, 200}` (defaults for
/// the rest), `|T| ∈ {100, 200, 300}` (k = 100, |E| = 500), and
/// `|E| ∈ {100, 500, 1000}` (k = 100, |T| = 150).
pub fn search_space_configs(config: &ExperimentConfig) -> Vec<(String, usize, usize, usize)> {
    // (label, k, |E|, |T|)
    let mut out = vec![
        ("k=50".to_string(), 50, 250, 75),
        ("k=100".to_string(), 100, 500, 150),
        ("k=200".to_string(), 200, 1000, 300),
        ("|T|=100".to_string(), 100, 500, 100),
        ("|T|=200".to_string(), 100, 500, 200),
        ("|T|=300".to_string(), 100, 500, 300),
        ("|E|=100".to_string(), 100, 100, 150),
        ("|E|=500".to_string(), 100, 500, 150),
        ("|E|=1000".to_string(), 100, 1000, 150),
    ];
    if config.quick {
        out.retain(|(_, k, e, t)| k * e * t <= 100 * 500 * 200);
    }
    out
}

/// Runs Figure 10b: assignments examined by ALG vs INC on the simulated
/// Meetup dataset across the nine parameter configurations.
pub fn run_search_space(config: &ExperimentConfig) -> FigureReport {
    let kinds = vec![SchedulerKind::Alg, SchedulerKind::Inc];
    let jobs: Vec<(usize, (String, usize, usize, usize))> =
        search_space_configs(config).into_iter().enumerate().collect();
    let records = par_rows(config.row_threads(), &jobs, |(i, (label, k, events, intervals))| {
        let (k, events, intervals) = (config.dim(*k), config.dim(*events), config.dim(*intervals));
        let inst =
            Dataset::Meetup.build(config.num_users, events, intervals, config.seed ^ (*i as u64));
        run_lineup_threaded(
            "fig10b",
            label,
            "config",
            *i as f64,
            &inst,
            k,
            &kinds,
            config.scheduler_threads(),
        )
    });
    FigureReport {
        id: "fig10b".into(),
        title: "Search space: assignments examined, ALG vs INC (Meetup)".into(),
        metrics: vec![Metric::Examined],
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_lineup;

    /// Fig 10b's claim: INC examines noticeably fewer assignments than ALG.
    #[test]
    fn inc_examines_fewer_assignments() {
        let inst = Dataset::Meetup.build(100, 60, 12, 2);
        let recs = run_lineup(
            "fig10b",
            "Meetup",
            "config",
            0.0,
            &inst,
            24,
            &[SchedulerKind::Alg, SchedulerKind::Inc],
        );
        let alg = recs.iter().find(|r| r.algorithm == "ALG").unwrap();
        let inc = recs.iter().find(|r| r.algorithm == "INC").unwrap();
        assert!(
            inc.examined < alg.examined,
            "INC {} must examine fewer than ALG {}",
            inc.examined,
            alg.examined
        );
        // And, per Prop. 3, with identical utility.
        assert!((inc.utility - alg.utility).abs() < 1e-9);
    }

    /// Propositions 5/7: at k mod |T| = 1 the horizontal algorithms pay for
    /// a full extra round — but still beat ALG on computations.
    #[test]
    fn worst_case_still_beats_alg() {
        let inst = Dataset::Zip.build(80, 100, 11, 4);
        let recs = run_lineup(
            "fig10a",
            "Zip",
            "wc",
            0.0,
            &inst,
            23,
            &[SchedulerKind::Alg, SchedulerKind::Hor, SchedulerKind::HorI],
        );
        let alg = recs.iter().find(|r| r.algorithm == "ALG").unwrap();
        let hor_i = recs.iter().find(|r| r.algorithm == "HOR-I").unwrap();
        assert!(hor_i.computations <= alg.computations);
    }
}
