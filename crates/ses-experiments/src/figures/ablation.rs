//! **Ablation study** (beyond the paper's figures) for the design choices
//! DESIGN.md calls out:
//!
//! 1. **Incremental-scheme decomposition** — `ALG` (no pruning) vs `LAZY`
//!    (upper-bound laziness only, CELF-style) vs `INC` (laziness + the
//!    §3.2.2 interval organization), plus `HOR`/`HOR-I` for the horizontal
//!    side. Run on Zip (bound-friendly) and Unf (bound-hostile), isolating
//!    where each idea pays. All of ALG/LAZY/INC return identical schedules.
//! 2. **Quality recovery** — `HOR` vs `HOR+LS` (horizontal + local-search
//!    refinement) vs `ALG`: how much of the §3.3 horizontal-policy utility
//!    gap the post-processing recovers, at a fraction of ALG's cost.

use crate::report::{FigureReport, Metric};
use crate::runner::{run_lineup, ExperimentConfig};
use ses_algorithms::SchedulerKind;
use ses_datasets::Dataset;

/// Runs ablation 1: incremental-scheme decomposition (`k > |T|` so update
/// work actually happens).
pub fn run_schemes(config: &ExperimentConfig) -> FigureReport {
    let kinds = vec![
        SchedulerKind::Alg,
        SchedulerKind::Lazy,
        SchedulerKind::Inc,
        SchedulerKind::Hor,
        SchedulerKind::HorI,
    ];
    let k = config.dim(100);
    let events = config.dim(500);
    let intervals = config.dim(40); // k > |T|: multiple horizontal rounds
    let mut records = Vec::new();
    for dataset in [Dataset::Zip, Dataset::Unf, Dataset::Meetup] {
        let inst = dataset.build(config.num_users, events, intervals, config.seed ^ 0xAB);
        records.extend(run_lineup(
            "ablation-schemes",
            dataset.name(),
            "scheme",
            0.0,
            &inst,
            k,
            &kinds,
        ));
    }
    FigureReport {
        id: "ablation-schemes".into(),
        title: "Incremental-scheme ablation: ALG vs LAZY vs INC / HOR vs HOR-I (k > |T|)".into(),
        metrics: vec![Metric::Computations, Metric::Examined, Metric::Time, Metric::Utility],
        records,
    }
}

/// Runs ablation 2: how much utility local search recovers for HOR.
pub fn run_refinement(config: &ExperimentConfig) -> FigureReport {
    let kinds = vec![SchedulerKind::Hor, SchedulerKind::RefinedHor, SchedulerKind::Alg];
    let k = config.dim(100);
    let events = config.dim(500);
    let intervals = config.dim(150);
    let mut records = Vec::new();
    for dataset in [Dataset::Unf, Dataset::Concerts, Dataset::Zip] {
        let inst = dataset.build(config.num_users, events, intervals, config.seed ^ 0xAC);
        records.extend(run_lineup(
            "ablation-refine",
            dataset.name(),
            "method",
            0.0,
            &inst,
            k,
            &kinds,
        ));
    }
    FigureReport {
        id: "ablation-refine".into(),
        title: "Refinement ablation: HOR vs HOR+LS vs ALG utility".into(),
        metrics: vec![Metric::Utility, Metric::Computations, Metric::Time],
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_report_consistent() {
        let config = ExperimentConfig::smoke();
        let rep = run_schemes(&config);
        for dataset in rep.datasets() {
            let get = |alg: &str| rep.cell(&dataset, alg, 0.0).unwrap();
            // Identical greedy order → identical utility.
            assert!((get("ALG").utility - get("LAZY").utility).abs() < 1e-9, "{dataset}");
            assert!((get("ALG").utility - get("INC").utility).abs() < 1e-9, "{dataset}");
            // Both pruned variants do no more score work than ALG.
            assert!(get("LAZY").computations <= get("ALG").computations);
            assert!(get("INC").computations <= get("ALG").computations);
        }
    }

    #[test]
    fn refinement_recovers_quality() {
        let config = ExperimentConfig::smoke();
        let rep = run_refinement(&config);
        for dataset in rep.datasets() {
            let get = |alg: &str| rep.cell(&dataset, alg, 0.0).unwrap();
            let (hor, refined) = (get("HOR").utility, get("HOR+LS").utility);
            assert!(refined >= hor - 1e-9, "{dataset}: refinement regressed");
        }
        // On at least one homogeneous dataset the recovery is strict.
        let improved = ["Unf", "Concerts"].iter().any(|d| {
            let hor = rep.cell(d, "HOR", 0.0).unwrap().utility;
            let refined = rep.cell(d, "HOR+LS", 0.0).unwrap().utility;
            refined > hor + 1e-6
        });
        assert!(improved, "local search should find something on Unf/Concerts");
    }
}
