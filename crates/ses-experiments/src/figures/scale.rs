//! **Scale** (beyond the paper) — build time and resident interest bytes
//! vs `|U|` across the three storage backends.
//!
//! The paper's Table 1 runs the user axis to 1M; the figure benches stop
//! at laptop scale. This figure opens the axis structurally: every sweep
//! point builds the *same* quantized Zipf instance (via the counter-based
//! streaming generator, [`ses_datasets::scale::build`]) in the dense,
//! sparse, and compressed layouts, then runs one INC schedule on each.
//! The schedules must land on bit-identical utilities — the storage
//! abstraction's core guarantee, enforced here in real experiment runs,
//! not just in tests — so the only things that vary across a row are the
//! build time and the resident bytes the layout holds the interest in.
//! (The committed `scale_100k`/`scale_1m` bench targets pin the 100k/1M
//! absolute numbers; this figure tracks the *shape* at harness scale.)

use crate::report::{FigureReport, Metric, RunRecord};
use crate::runner::{par_rows, ExperimentConfig};
use ses_algorithms::SchedulerKind;
use ses_core::model::StorageKind;
use ses_datasets::{scale, InterestModel, SyntheticParams};
use std::time::Instant;

/// The compared interest layouts, in report order.
pub const BACKENDS: [StorageKind; 3] =
    [StorageKind::Dense, StorageKind::Sparse, StorageKind::Compressed];

/// The fixed `k` of this figure (before `dim` scaling).
pub const K: usize = 20;
/// Quantization levels — the compressed layout's dictionary cap.
pub const LEVELS: usize = 256;

/// Swept user counts: ×5, ×25, ×100 of the configured base (full mode adds
/// ×250), echoing the 10K→1M ratios of Table 1's user axis.
pub fn sweep(config: &ExperimentConfig) -> Vec<usize> {
    let base = config.num_users.max(20);
    let mut s = vec![base * 5, base * 25, base * 100];
    if !config.quick {
        s.push(base * 250);
    }
    s
}

/// Runs the scale figure (sweep rows fan out across `config.threads`).
pub fn run(config: &ExperimentConfig) -> FigureReport {
    let k = config.dim(K);
    let events = config.dim(5 * K);
    let intervals = config.dim(3 * K / 2);
    let records = par_rows(config.row_threads(), &sweep(config), |&users| {
        let params = SyntheticParams {
            num_users: users,
            num_events: events,
            num_intervals: intervals,
            competing_per_interval: (1, 4),
            interest: InterestModel::Zipf { s: 2.0 },
            interest_levels: LEVELS,
            seed: config.seed ^ users as u64,
            ..SyntheticParams::default()
        };
        let threads = config.scheduler_threads();
        let mut row = Vec::new();
        let mut utility_bits: Option<u64> = None;
        for kind in BACKENDS {
            let start = Instant::now();
            let inst = scale::build(&params, kind);
            let build_ms = start.elapsed().as_secs_f64() * 1e3;
            let res = SchedulerKind::Inc.run_threaded(&inst, k, threads);
            // Bit-identity across layouts is the storage abstraction's
            // contract; a divergence here is a correctness bug, not noise.
            let bits = res.utility.to_bits();
            match utility_bits {
                None => utility_bits = Some(bits),
                Some(expect) => assert_eq!(
                    expect, bits,
                    "|U|={users}: {kind} INC utility diverged from {}",
                    BACKENDS[0]
                ),
            }
            row.push(RunRecord {
                figure: "scale".into(),
                dataset: "Zip".into(),
                algorithm: kind.name().to_uppercase(),
                x_label: "|U|".into(),
                x: users as f64,
                k,
                num_events: inst.num_events(),
                num_intervals: inst.num_intervals(),
                num_users: users,
                utility: res.utility,
                computations: res.stats.user_ops,
                examined: res.stats.assignments_examined,
                time_ms: build_ms,
                heap_bytes: inst.event_interest.heap_bytes() as u64,
            });
        }
        row
    });
    FigureReport {
        id: "scale".into(),
        title: format!(
            "Interest-storage backends vs |U| (Zip s = 2, k = {K}, |E| = {}k, \
             {LEVELS} interest levels): build time and resident interest bytes; \
             INC utility is bit-identical across backends by construction",
            5
        ),
        metrics: vec![Metric::Time, Metric::Memory, Metric::Utility],
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::x_eq;

    /// The headline claims at smoke scale: one record per backend per sweep
    /// point, bit-identical utilities across backends (asserted inside
    /// `run` as well), and the compressed layout resident-byte win over
    /// sparse at the largest sweep point.
    #[test]
    fn backends_agree_and_compressed_wins_on_bytes() {
        let config = ExperimentConfig::smoke();
        let report = run(&config);
        let sweep = sweep(&config);
        assert_eq!(report.records.len(), BACKENDS.len() * sweep.len());
        for &users in &sweep {
            let x = users as f64;
            let dense = report.cell("Zip", "DENSE", x).unwrap();
            let sparse = report.cell("Zip", "SPARSE", x).unwrap();
            let compressed = report.cell("Zip", "COMPRESSED", x).unwrap();
            assert_eq!(dense.utility.to_bits(), sparse.utility.to_bits());
            assert_eq!(dense.utility.to_bits(), compressed.utility.to_bits());
            assert!(dense.heap_bytes > 0 && compressed.heap_bytes > 0);
        }
        // Zipf columns are full (every user holds a nonzero draw), so u16
        // codes beat both 8-byte dense cells and 12-byte sparse entries
        // once the matrix dwarfs the dictionary + block metadata.
        let largest = *sweep.last().unwrap() as f64;
        let sparse = report.cell("Zip", "SPARSE", largest).unwrap();
        let compressed = report.cell("Zip", "COMPRESSED", largest).unwrap();
        assert!(
            compressed.heap_bytes * 3 <= sparse.heap_bytes,
            "compressed {} B vs sparse {} B",
            compressed.heap_bytes,
            sparse.heap_bytes
        );
        let xs = report.xs("Zip");
        assert!(xs.iter().zip(&sweep).all(|(&a, &b)| x_eq(a, b as f64)));
    }
}
