//! **Dynamic** (beyond the paper) — incremental repair vs full recompute
//! on a churning op stream, sweeping the structural-churn rate.
//!
//! For each churn level a seeded [`ses_datasets::ops`] stream is replayed
//! twice over the same Unf base instance: once through the warm-started
//! [`StreamScheduler`] (repair), once as a cold rebuild per op (the full
//! recompute a static system would run). The two paths produce identical
//! schedules and utilities by construction; the figure records the *work*
//! — assignments examined, score user-ops, wall time — aggregated over the
//! stream, so the `STREAM`/`REBUILD` ratio per metric is the dynamic
//! subsystem's headline number (EXPERIMENTS.md tracks it).

use crate::report::{FigureReport, Metric, RunRecord};
use crate::runner::{par_rows, ExperimentConfig};
use ses_algorithms::stream::StreamScheduler;
use ses_core::delta;
use ses_core::stats::Stats;
use ses_datasets::ops::{self, OpStreamParams};
use ses_datasets::Dataset;

/// The swept structural-churn rates (probability an op is structural
/// rather than interest drift).
pub const CHURN_LEVELS: [f64; 4] = [0.0, 0.2, 0.5, 0.9];

/// The fixed `k` of this figure (before `dim` scaling).
pub const K: usize = 20;
/// `|E|` of the base instance (before `dim` scaling).
pub const EVENTS: usize = 100;
/// `|T|` of the base instance (before `dim` scaling).
pub const INTERVALS: usize = 15;

/// Ops per churn level.
pub fn ops_per_level(config: &ExperimentConfig) -> usize {
    if config.quick {
        40
    } else {
        160
    }
}

/// Runs the dynamic figure (churn levels fan out across `config.threads`).
pub fn run(config: &ExperimentConfig) -> FigureReport {
    let k = config.dim(K);
    let events = config.dim(EVENTS);
    let intervals = config.dim(INTERVALS);
    let num_ops = ops_per_level(config);
    let records = par_rows(config.row_threads(), &CHURN_LEVELS, |&churn| {
        let base = Dataset::Unf.build(config.num_users, events, intervals, config.seed ^ 0xD1);
        let params = OpStreamParams::default()
            .with_ops(num_ops)
            .with_churn(churn)
            .with_seed(config.seed ^ (churn * 100.0) as u64);
        let stream_ops = ops::generate(&base, &params);
        let threads = config.scheduler_threads();

        // Incremental: one warm scheduler repairs across the whole stream.
        let mut stream = StreamScheduler::new(base.clone(), k, threads);
        let mut repair = Stats::new();
        let mut repair_ms = 0.0;
        for op in &stream_ops {
            let rep = stream.apply(op).expect("generated ops are valid");
            repair += rep.stats;
            repair_ms += rep.time_ms;
        }

        // Recompute: a cold build per op on the materialized instance.
        let mut mat = base;
        let mut rebuild = Stats::new();
        let mut rebuild_ms = 0.0;
        let mut rebuild_utility = f64::NAN;
        for op in &stream_ops {
            delta::apply(&mut mat, op).expect("generated ops are valid");
            let cold = StreamScheduler::new(mat.clone(), k, threads);
            rebuild += cold.last_repair().stats;
            rebuild_ms += cold.last_repair().time_ms;
            rebuild_utility = cold.utility();
        }
        // Result-equivalence is the subsystem's core guarantee — enforce it
        // in real (release) experiment runs, not just in tests.
        assert_eq!(
            stream.utility().to_bits(),
            rebuild_utility.to_bits(),
            "churn {churn}: incremental repair diverged from full recompute"
        );

        let record = |algorithm: &str, stats: &Stats, utility: f64, time_ms: f64| RunRecord {
            figure: "dynamic".into(),
            dataset: "Unf".into(),
            algorithm: algorithm.into(),
            x_label: "churn".into(),
            x: churn,
            k,
            num_events: mat.num_events(),
            num_intervals: mat.num_intervals(),
            num_users: mat.num_users(),
            utility,
            computations: stats.user_ops,
            examined: stats.assignments_examined,
            time_ms,
            heap_bytes: 0,
        };
        vec![
            record("STREAM", &repair, stream.utility(), repair_ms),
            record("REBUILD", &rebuild, rebuild_utility, rebuild_ms),
        ]
    });
    FigureReport {
        id: "dynamic".into(),
        title: format!(
            "Dynamic op streams: incremental repair vs full recompute \
             (Unf, k = {K}, |E| = {EVENTS}, |T| = {INTERVALS}, {} ops/level)",
            ops_per_level(config)
        ),
        metrics: vec![Metric::Examined, Metric::Computations, Metric::Time],
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::x_eq;

    /// The headline claim: across every churn level, incremental repair
    /// examines and computes strictly less than per-op recompute while
    /// landing on the same final utility.
    #[test]
    fn stream_beats_rebuild_at_every_churn_level() {
        let config = ExperimentConfig::smoke();
        let report = run(&config);
        assert_eq!(report.records.len(), 2 * CHURN_LEVELS.len());
        for &churn in &CHURN_LEVELS {
            let stream = report.cell("Unf", "STREAM", churn).unwrap();
            let rebuild = report.cell("Unf", "REBUILD", churn).unwrap();
            assert!(
                stream.examined < rebuild.examined,
                "churn {churn}: STREAM examined {} !< REBUILD {}",
                stream.examined,
                rebuild.examined
            );
            assert!(
                stream.computations < rebuild.computations,
                "churn {churn}: STREAM user-ops {} !< REBUILD {}",
                stream.computations,
                rebuild.computations
            );
            assert_eq!(stream.utility.to_bits(), rebuild.utility.to_bits());
        }
        // Work should generally rise with churn for the incremental path.
        let xs = report.xs("Unf");
        assert!(xs.iter().zip(&CHURN_LEVELS).all(|(&a, &b)| x_eq(a, b)));
    }
}
