//! **Figure 9** — varying the number of available locations
//! (utility 9a, time 9b) on Unf with `|T| = 65`, `k = 100`.
//!
//! Fewer locations ⇒ fewer feasible assignments ⇒ faster but (for the
//! baselines) slightly different utility; the greedy methods are nearly
//! unaffected.

use crate::report::{FigureReport, Metric};
use crate::runner::{par_rows, run_lineup_threaded, standard_kinds, ExperimentConfig};
use ses_datasets::params::{InterestModel, SyntheticParams};
use ses_datasets::synthetic;

/// Swept location counts (Table 1).
pub fn sweep(config: &ExperimentConfig) -> Vec<usize> {
    if config.quick {
        vec![5, 10, 25, 50]
    } else {
        vec![5, 10, 25, 50, 70]
    }
}

/// The fixed `k` of this figure.
pub const K: usize = 100;
/// The fixed `|T|` (the paper's 65-interval setting so HOR-I is defined).
pub const INTERVALS: usize = 65;

/// Runs Figure 9 (sweep rows fan out across `config.threads`).
pub fn run(config: &ExperimentConfig) -> FigureReport {
    let kinds = standard_kinds();
    let k = config.dim(K);
    let jobs = sweep(config);
    let records = par_rows(config.row_threads(), &jobs, |&locations| {
        let params = SyntheticParams {
            num_users: config.num_users,
            num_events: config.dim(500),
            num_intervals: config.dim(INTERVALS),
            num_locations: locations,
            interest: InterestModel::Uniform,
            seed: config.seed ^ (locations as u64),
            ..SyntheticParams::default()
        };
        let inst = synthetic::generate(&params);
        run_lineup_threaded(
            "fig9",
            "Unf",
            "locations",
            locations as f64,
            &inst,
            k,
            &kinds,
            config.scheduler_threads(),
        )
    });
    FigureReport {
        id: "fig9".into(),
        title: "Varying the number of available locations (Unf, k = 100, |T| = 65)".into(),
        metrics: vec![Metric::Utility, Metric::Time],
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_lineup;
    use ses_algorithms::SchedulerKind;

    /// §4.2.5: fewer locations ⇒ fewer feasible assignments ⇒ less work.
    /// To isolate the location effect the *same* instance is re-run with
    /// locations coarsened post-hoc (remapped mod 2), so interest/activity
    /// are identical and only the conflict structure tightens.
    #[test]
    fn fewer_locations_reduce_work() {
        let params = SyntheticParams {
            num_users: 60,
            num_events: 60,
            num_intervals: 8,
            num_locations: 20,
            interest: InterestModel::Uniform,
            seed: 11,
            ..SyntheticParams::default()
        };
        let wide = synthetic::generate(&params);
        let mut narrow = wide.clone();
        for e in &mut narrow.events {
            e.location = ses_core::LocationId::new(e.location.index() % 2);
        }

        let run = |inst: &_| {
            run_lineup("fig9", "Unf", "locations", 0.0, inst, 10, &[SchedulerKind::Alg]).remove(0)
        };
        let wide_rec = run(&wide);
        let narrow_rec = run(&narrow);
        // Tighter location constraints kill assignments earlier, so ALG
        // performs no more score work (the §4.2.5 time trend).
        assert!(
            narrow_rec.computations <= wide_rec.computations,
            "narrow {} vs wide {}",
            narrow_rec.computations,
            wide_rec.computations
        );
        // A feasible schedule still comes out of both.
        assert!(narrow_rec.utility > 0.0 && wide_rec.utility > 0.0);
    }
}
