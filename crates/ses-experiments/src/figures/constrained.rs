//! **Constrained** (beyond the paper) — what a scenario-constraint set
//! costs the schedulers.
//!
//! For each seeded [`ConstraintFamily`] preset (x = family index: 0
//! capacity-tight, 1 conflict-clique, 2 precedence-chain, 3 mixed) the
//! same Unf base instance is scheduled twice by each probed kind: free
//! (`ALG`, `INC`, `HOR-I` rows) and with the family installed (`+C`
//! rows). Every candidate then flows through `Schedule::check_assign`'s
//! feasibility gate, so the `+C`/free ratio per metric — assignments
//! examined, score user-ops, wall time — is the constraint layer's
//! measured overhead (EXPERIMENTS.md tracks the examined ratio). Each
//! constrained schedule is re-verified feasible before it is recorded.
//!
//! [`ConstraintFamily`]: ses_datasets::ConstraintFamily

use crate::report::{FigureReport, Metric, RunRecord};
use crate::runner::{par_rows, ExperimentConfig};
use ses_algorithms::{RunConfig, SchedulerKind, SesService};
use ses_datasets::{ConstraintFamily, Dataset};

/// The probed scheduler kinds (the paper's headliner, its incremental
/// refinement, and the bound-gated horizontal variant).
pub const KINDS: [SchedulerKind; 3] = [SchedulerKind::Alg, SchedulerKind::Inc, SchedulerKind::HorI];

/// The fixed `k` of this figure (before `dim` scaling).
pub const K: usize = 20;
/// `|E|` of the base instance (before `dim` scaling).
pub const EVENTS: usize = 100;
/// `|T|` of the base instance (before `dim` scaling).
pub const INTERVALS: usize = 15;

/// Runs the constrained-overhead figure (families fan out across
/// `config.threads`).
pub fn run(config: &ExperimentConfig) -> FigureReport {
    let k = config.dim(K);
    let events = config.dim(EVENTS);
    let intervals = config.dim(INTERVALS);
    let families: Vec<(usize, ConstraintFamily)> =
        ConstraintFamily::ALL.into_iter().enumerate().collect();
    let records = par_rows(config.row_threads(), &families, |&(ix, family)| {
        let free = Dataset::Unf.build(config.num_users, events, intervals, config.seed ^ 0xC0);
        let mut constrained = free.clone();
        family.apply(&mut constrained, config.seed ^ 0x5E7);
        let threads = config.scheduler_threads();

        let mut row = Vec::with_capacity(2 * KINDS.len());
        for (inst, suffix) in [(&free, ""), (&constrained, "+C")] {
            let mut service = SesService::new(inst.clone()).with_threads(threads);
            for kind in KINDS {
                let res = service.schedule_kind(kind, k, RunConfig::threaded(threads));
                // Feasibility is the layer's core guarantee — enforce it in
                // real (release) experiment runs, not just in tests.
                res.schedule
                    .verify_feasible(inst)
                    .unwrap_or_else(|e| panic!("{}{suffix}/{}: {e}", res.algorithm, family.name()));
                row.push(RunRecord {
                    figure: "constrained".into(),
                    dataset: "Unf".into(),
                    algorithm: format!("{}{suffix}", res.algorithm),
                    x_label: "family".into(),
                    x: ix as f64,
                    k,
                    num_events: inst.num_events(),
                    num_intervals: inst.num_intervals(),
                    num_users: inst.num_users(),
                    utility: res.utility,
                    computations: res.stats.user_ops,
                    examined: res.stats.assignments_examined,
                    time_ms: res.elapsed.as_secs_f64() * 1e3,
                    heap_bytes: 0,
                });
            }
        }
        row
    });
    FigureReport {
        id: "constrained".into(),
        title: format!(
            "Constraint-layer overhead: free vs constrained (+C) runs per family \
             (Unf, k = {K}, |E| = {EVENTS}, |T| = {INTERVALS}; x = family index \
             0:capacity-tight 1:conflict-clique 2:precedence-chain 3:mixed)"
        ),
        metrics: vec![Metric::Examined, Metric::Computations, Metric::Utility],
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::parallel::Threads;

    /// Shape and semantics of the report: every family carries one free and
    /// one `+C` record per kind, the free baseline is family-invariant, and
    /// each constrained run examined a positive number of candidates.
    #[test]
    fn free_and_constrained_rows_cover_every_family() {
        let config = ExperimentConfig::smoke();
        let report = run(&config);
        assert_eq!(report.records.len(), 2 * KINDS.len() * ConstraintFamily::ALL.len());
        let baseline: Vec<&RunRecord> =
            report.records.iter().filter(|r| !r.algorithm.ends_with("+C")).collect();
        for r in &baseline {
            let first = baseline.iter().find(|b| b.algorithm == r.algorithm).unwrap();
            assert_eq!(
                first.utility.to_bits(),
                r.utility.to_bits(),
                "{}: free baseline must not depend on the family axis",
                r.algorithm
            );
            assert_eq!(first.examined, r.examined);
        }
        for r in report.records.iter().filter(|r| r.algorithm.ends_with("+C")) {
            assert!(r.examined > 0, "{} @ x = {}: no candidates examined", r.algorithm, r.x);
            assert!(r.utility.is_finite());
        }
    }

    /// The report is bit-identical whether families run sequentially or fan
    /// out across rows — same discipline as every other figure.
    #[test]
    fn parallel_fanout_is_bit_identical() {
        let seq = run(&ExperimentConfig::smoke());
        let par = run(&ExperimentConfig::smoke().with_threads(4));
        assert!(!Threads::new(4).is_sequential());
        assert_eq!(seq.records.len(), par.records.len());
        for (a, b) in seq.records.iter().zip(&par.records) {
            assert_eq!((a.x, a.algorithm.as_str()), (b.x, b.algorithm.as_str()));
            assert_eq!(a.utility.to_bits(), b.utility.to_bits());
            assert_eq!(a.examined, b.examined);
            assert_eq!(a.computations, b.computations);
        }
    }
}
