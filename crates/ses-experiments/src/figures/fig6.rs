//! **Figure 6** — varying the number of time intervals `|T|`
//! (utility 6a–d, time 6e–h) with `k = 100`, `|E| = 500`.

use crate::report::{FigureReport, Metric};
use crate::runner::{par_rows, run_lineup_threaded, standard_kinds, ExperimentConfig};
use ses_datasets::Dataset;

/// Swept `|T|` values (Table 1's Fig-6 axis).
pub fn sweep(config: &ExperimentConfig) -> Vec<usize> {
    if config.quick {
        vec![20, 50, 100, 150]
    } else {
        vec![20, 50, 100, 150, 200, 300]
    }
}

/// The fixed `k` of this figure.
pub const K: usize = 100;

/// Runs Figure 6 (sweep rows fan out across `config.threads`).
pub fn run(config: &ExperimentConfig) -> FigureReport {
    let kinds = standard_kinds();
    let k = config.dim(K);
    let mut jobs = Vec::new();
    for dataset in Dataset::ALL {
        for &t in &config.scaled_sweep(&sweep(config)) {
            jobs.push((dataset, t));
        }
    }
    let records = par_rows(config.row_threads(), &jobs, |&(dataset, t)| {
        let tt = config.dim(t);
        let inst = dataset.build(config.num_users, 5 * k, tt, config.seed ^ (t as u64));
        run_lineup_threaded(
            "fig6",
            dataset.name(),
            "|T|",
            t as f64,
            &inst,
            k,
            &kinds,
            config.scheduler_threads(),
        )
    });
    FigureReport {
        id: "fig6".into(),
        title: "Varying the number of time intervals |T| (k = 100, |E| = 500)".into(),
        metrics: vec![Metric::Utility, Metric::Time],
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_lineup;

    /// §4.2.2: utility increases with |T| (fewer parallel events per
    /// interval + more candidate assignments).
    #[test]
    fn utility_grows_with_intervals() {
        let kinds = [ses_algorithms::SchedulerKind::Hor];
        let mut utilities = Vec::new();
        for t in [4usize, 16] {
            let inst = Dataset::Unf.build(80, 60, t, 3);
            let recs = run_lineup("fig6", "Unf", "|T|", t as f64, &inst, 12, &kinds);
            utilities.push(recs[0].utility);
        }
        assert!(utilities[1] > utilities[0], "more intervals must help: {utilities:?}");
    }
}
