//! **Figure 8** — varying the number of users `|U|` on the Unf dataset.
//!
//! Two settings: (8a) the default `|T| = 150`, where `k < |T|` makes HOR-I
//! undefined (identical to HOR) so the paper omits it; and (8b) `|T| = 65`,
//! the "average case" for the horizontal algorithms w.r.t. `k`/`|T|`, where
//! HOR-I participates.

use crate::report::{FigureReport, Metric};
use crate::runner::{par_rows, run_lineup_threaded, ExperimentConfig};
use ses_algorithms::SchedulerKind;
use ses_datasets::Dataset;

/// Swept user counts. The paper sweeps 100K–1M; the harness scales the axis
/// by the configured base user count (×1, ×2.5, ×5 in quick mode, plus ×10
/// in full mode — mirroring 100K/500K/1M ratios).
pub fn sweep(config: &ExperimentConfig) -> Vec<usize> {
    let base = config.num_users.max(50);
    if config.quick {
        vec![base, base * 5 / 2, base * 5]
    } else {
        vec![base, base * 5 / 2, base * 5, base * 10]
    }
}

/// The fixed `k` of this figure.
pub const K: usize = 100;
/// `|E|` at the Table-1 default.
pub const EVENTS: usize = 500;

/// Runs Figure 8 (both sub-figures; dataset column distinguishes them).
/// Sweep rows fan out across `config.threads`.
pub fn run(config: &ExperimentConfig) -> FigureReport {
    let mut jobs = Vec::new();
    for (label, raw_intervals, with_hor_i) in
        [("Unf |T|=150", 150usize, false), ("Unf |T|=65", 65usize, true)]
    {
        let mut kinds = vec![SchedulerKind::Alg, SchedulerKind::Inc, SchedulerKind::Hor];
        if with_hor_i {
            kinds.push(SchedulerKind::HorI);
        }
        kinds.push(SchedulerKind::Top);
        kinds.push(SchedulerKind::Rand(0));
        for &users in &sweep(config) {
            jobs.push((label, raw_intervals, kinds.clone(), users));
        }
    }
    let k = config.dim(K);
    let events = config.dim(EVENTS);
    let records = par_rows(config.row_threads(), &jobs, |(label, raw_intervals, kinds, users)| {
        let intervals = config.dim(*raw_intervals);
        let inst = Dataset::Unf.build(*users, events, intervals, config.seed ^ (*users as u64));
        run_lineup_threaded(
            "fig8",
            label,
            "|U|",
            *users as f64,
            &inst,
            k,
            kinds,
            config.scheduler_threads(),
        )
    });
    FigureReport {
        id: "fig8".into(),
        title: "Varying the number of users |U| (Unf, k = 100, |E| = 500)".into(),
        metrics: vec![Metric::Time, Metric::Computations, Metric::Utility],
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_lineup;

    /// §4.2.4: utility and computation cost both grow with |U|.
    #[test]
    fn cost_and_utility_scale_with_users() {
        let kinds = [SchedulerKind::Alg];
        let mut utils = Vec::new();
        let mut comps = Vec::new();
        for users in [40usize, 160] {
            let inst = Dataset::Unf.build(users, 40, 10, 9);
            let recs = run_lineup("fig8", "Unf", "|U|", users as f64, &inst, 8, &kinds);
            utils.push(recs[0].utility);
            comps.push(recs[0].computations);
        }
        assert!(utils[1] > utils[0]);
        assert!(comps[1] > comps[0]);
        // Computations are linear in |U| for a fixed dense instance shape:
        // 4× the users ⇒ ≈4× the user-ops.
        let ratio = comps[1] as f64 / comps[0] as f64;
        assert!((2.0..8.0).contains(&ratio), "ratio {ratio}");
    }
}
