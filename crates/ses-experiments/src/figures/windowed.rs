//! **Windowed** (beyond the paper) — coalesced windowed ingestion vs
//! op-at-a-time repair on a redundant bursty feed, sweeping the window
//! size.
//!
//! For each window size the same seeded bursty feed (redundant follower
//! drifts layered over a churn backbone, see
//! [`ses_datasets::ops::generate_bursts`]) is ingested twice from the
//! same warm Unf base: once one coalesced window at a time through
//! [`StreamScheduler::repair_batch`], once op-at-a-time through
//! `apply`. The two paths land on bit-identical schedules and utilities
//! by construction — the figure records the *work* (assignments
//! examined, score user-ops, wall time) and the per-row ops/sec ratio is
//! the windowing subsystem's headline number (EXPERIMENTS.md tracks it).
//! Window size 1 is the degenerate case: every window is a single op, so
//! the coalesced path pays the coalescing pass for no batching win.

use crate::report::{FigureReport, Metric, RunRecord};
use crate::runner::{par_rows, ExperimentConfig};
use ses_algorithms::stream::StreamScheduler;
use ses_core::delta::DeltaOp;
use ses_core::stats::Stats;
use ses_datasets::ops::{self, BurstParams, OpStreamParams};
use ses_datasets::Dataset;

/// The swept window sizes (ops per coalesced flush).
pub const WINDOW_SIZES: [usize; 4] = [1, 4, 16, 64];

/// The fixed `k` of this figure (before `dim` scaling).
pub const K: usize = 20;
/// `|E|` of the base instance (before `dim` scaling).
pub const EVENTS: usize = 100;
/// `|T|` of the base instance (before `dim` scaling).
pub const INTERVALS: usize = 15;
/// Redundant-follower pressure of the feed.
pub const REDUNDANCY: f64 = 0.6;

/// Backbone ops of the shared feed (followers inflate the actual count).
pub fn backbone_ops(config: &ExperimentConfig) -> usize {
    if config.quick {
        60
    } else {
        200
    }
}

/// Runs the windowed figure (window sizes fan out across
/// `config.threads`).
pub fn run(config: &ExperimentConfig) -> FigureReport {
    let k = config.dim(K);
    let events = config.dim(EVENTS);
    let intervals = config.dim(INTERVALS);
    let num_ops = backbone_ops(config);
    let records = par_rows(config.row_threads(), &WINDOW_SIZES, |&window| {
        let base = Dataset::Unf.build(config.num_users, events, intervals, config.seed ^ 0xF1);
        let params = OpStreamParams::default()
            .with_ops(num_ops)
            .with_churn(0.3)
            .with_seed(config.seed ^ 0xFEED);
        let burst = BurstParams::default().with_ops(params).with_redundancy(REDUNDANCY);
        let feed: Vec<DeltaOp> =
            ops::generate_bursts(&base, &burst).into_iter().map(|t| t.op).collect();
        let threads = config.scheduler_threads();

        // Windowed: one coalesced batch per window flush.
        let mut windowed = StreamScheduler::new(base.clone(), k, threads);
        let mut batched = Stats::new();
        let mut batched_ms = 0.0;
        for chunk in feed.chunks(window) {
            let rep = windowed.repair_batch(chunk).expect("generated windows are valid");
            batched += rep.stats;
            batched_ms += rep.time_ms;
        }

        // Op-at-a-time: the same feed through the per-op repair path.
        let mut serial = StreamScheduler::new(base, k, threads);
        let mut per_op = Stats::new();
        let mut per_op_ms = 0.0;
        for op in &feed {
            let rep = serial.apply(op).expect("generated ops are valid");
            per_op += rep.stats;
            per_op_ms += rep.time_ms;
        }
        // Bit-identity is the subsystem's core guarantee — enforce it in
        // real (release) experiment runs, not just in tests.
        assert!(
            windowed.instance() == serial.instance(),
            "window {window}: coalesced ingestion diverged from op-at-a-time"
        );
        assert_eq!(
            windowed.utility().to_bits(),
            serial.utility().to_bits(),
            "window {window}: utility bits diverged"
        );

        let record = |algorithm: &str, stats: &Stats, utility: f64, time_ms: f64| RunRecord {
            figure: "windowed".into(),
            dataset: "Unf".into(),
            algorithm: algorithm.into(),
            x_label: "window".into(),
            x: window as f64,
            k,
            num_events: serial.instance().num_events(),
            num_intervals: serial.instance().num_intervals(),
            num_users: serial.instance().num_users(),
            utility,
            computations: stats.user_ops,
            examined: stats.assignments_examined,
            time_ms,
            heap_bytes: 0,
        };
        vec![
            record("WINDOWED", &batched, windowed.utility(), batched_ms),
            record("OP-AT-A-TIME", &per_op, serial.utility(), per_op_ms),
        ]
    });
    FigureReport {
        id: "windowed".into(),
        title: format!(
            "Windowed ingestion: coalesced flush vs op-at-a-time repair \
             (Unf, k = {K}, |E| = {EVENTS}, |T| = {INTERVALS}, redundancy {REDUNDANCY}, \
             {} backbone ops)",
            backbone_ops(config)
        ),
        metrics: vec![Metric::Examined, Metric::Computations, Metric::Time],
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::x_eq;

    /// The headline claim: at every real window size (> 1), coalesced
    /// ingestion examines and computes less than op-at-a-time repair of
    /// the same feed while landing on the same final utility.
    #[test]
    fn windowed_beats_op_at_a_time_beyond_window_one() {
        let config = ExperimentConfig::smoke();
        let report = run(&config);
        assert_eq!(report.records.len(), 2 * WINDOW_SIZES.len());
        for &window in &WINDOW_SIZES {
            let x = window as f64;
            let windowed = report.cell("Unf", "WINDOWED", x).unwrap();
            let serial = report.cell("Unf", "OP-AT-A-TIME", x).unwrap();
            assert_eq!(windowed.utility.to_bits(), serial.utility.to_bits());
            if window > 1 {
                assert!(
                    windowed.examined < serial.examined,
                    "window {window}: WINDOWED examined {} !< OP-AT-A-TIME {}",
                    windowed.examined,
                    serial.examined
                );
                assert!(
                    windowed.computations < serial.computations,
                    "window {window}: WINDOWED user-ops {} !< OP-AT-A-TIME {}",
                    windowed.computations,
                    serial.computations
                );
            }
        }
        let xs = report.xs("Unf");
        assert!(xs.iter().zip(&WINDOW_SIZES).all(|(&a, &b)| x_eq(a, b as f64)));
    }
}
