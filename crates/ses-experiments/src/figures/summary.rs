//! **§4.2.8 summary** — solution-quality comparison across a randomized
//! batch of configurations:
//!
//! * INC reports the same utility as ALG in **every** run (Prop. 3);
//! * HOR (≡ HOR-I) matches ALG's utility in most runs (paper: > 70%), with
//!   a tiny average gap otherwise (paper: 0.008% mean, 1.3% max).

use serde::{Deserialize, Serialize};
use ses_algorithms::SchedulerKind;
use ses_datasets::Dataset;
use std::fmt::Write as _;

/// One batch entry: a config and the three utilities measured on it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityRun {
    /// Dataset name.
    pub dataset: String,
    /// Schedule size.
    pub k: usize,
    /// `|E|`.
    pub num_events: usize,
    /// `|T|`.
    pub num_intervals: usize,
    /// Utilities of (ALG, INC, HOR).
    pub alg: f64,
    /// INC utility.
    pub inc: f64,
    /// HOR utility.
    pub hor: f64,
}

/// Aggregate of the quality batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualitySummary {
    /// All individual runs.
    pub runs: Vec<QualityRun>,
    /// Fraction of runs where HOR's utility equals ALG's (to 1e-9 rel).
    pub hor_equal_fraction: f64,
    /// Mean relative gap (%) of HOR vs ALG over *all* runs.
    pub hor_mean_gap_pct: f64,
    /// Largest relative gap (%).
    pub hor_max_gap_pct: f64,
    /// Whether INC matched ALG exactly in every run (must be true).
    pub inc_always_equal: bool,
}

impl QualitySummary {
    /// Text rendering for EXPERIMENTS.md.
    pub fn render(&self) -> String {
        let mut out = String::from("# §4.2.8 solution-quality summary\n\n");
        let _ = writeln!(out, "runs:                 {}", self.runs.len());
        let _ = writeln!(out, "INC == ALG always:    {}", self.inc_always_equal);
        let _ = writeln!(
            out,
            "HOR == ALG:           {:.1}% of runs (paper: >70%)",
            100.0 * self.hor_equal_fraction
        );
        let _ =
            writeln!(out, "HOR mean gap:         {:.4}% (paper: 0.008%)", self.hor_mean_gap_pct);
        let _ = writeln!(out, "HOR max gap:          {:.3}% (paper: 1.3%)", self.hor_max_gap_pct);
        out
    }
}

/// Runs the quality batch: every dataset × a spread of `k`/shape configs ×
/// `seeds` seeds.
pub fn run(num_users: usize, seeds: u64) -> QualitySummary {
    let mut runs = Vec::new();
    let mut inc_always_equal = true;

    for dataset in Dataset::ALL {
        for &(k, events, intervals) in
            &[(20usize, 100usize, 30usize), (30, 150, 45), (50, 250, 75), (40, 200, 20)]
        {
            for seed in 0..seeds {
                let inst = dataset.build(num_users, events, intervals, 0xBA7C4 + seed);
                let alg = SchedulerKind::Alg.run(&inst, k);
                let inc = SchedulerKind::Inc.run(&inst, k);
                let hor = SchedulerKind::Hor.run(&inst, k);
                if (alg.utility - inc.utility).abs() > 1e-9 * alg.utility.max(1.0) {
                    inc_always_equal = false;
                }
                runs.push(QualityRun {
                    dataset: dataset.name().to_string(),
                    k,
                    num_events: events,
                    num_intervals: intervals,
                    alg: alg.utility,
                    inc: inc.utility,
                    hor: hor.utility,
                });
            }
        }
    }

    let mut equal = 0usize;
    let mut gaps = Vec::new();
    for r in &runs {
        let rel = ((r.alg - r.hor) / r.alg.max(1e-12)).max(0.0) * 100.0;
        if rel < 1e-7 {
            equal += 1;
        }
        gaps.push(rel);
    }
    let hor_equal_fraction = equal as f64 / runs.len().max(1) as f64;
    let hor_mean_gap_pct = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
    let hor_max_gap_pct = gaps.iter().cloned().fold(0.0, f64::max);

    QualitySummary { runs, hor_equal_fraction, hor_mean_gap_pct, hor_max_gap_pct, inc_always_equal }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// INC ≡ ALG must hold unconditionally (Prop. 3). The HOR-vs-ALG gap is
    /// dataset dependent: on skewed interest (Zip) HOR matches ALG exactly;
    /// on homogeneous interest (Unf/Concerts) ALG profits from doubling
    /// events into low-competition intervals, which the horizontal policy
    /// foregoes by design (§3.3's stated trade-off) — at laptop scale this
    /// costs HOR a few percent, larger than the paper's reported 0.008%
    /// average (see EXPERIMENTS.md for the analysis).
    #[test]
    fn quality_batch_reproduces_4_2_8() {
        let s = run(60, 1);
        assert_eq!(s.runs.len(), 4 * 4);
        assert!(s.inc_always_equal, "Prop. 3 must hold in every run");
        // Zip runs in the single-round regime (k ≤ |T|) must tie exactly:
        // skewed scores make ALG spread out just like the horizontal policy.
        let zip_gaps: Vec<f64> = s
            .runs
            .iter()
            .filter(|r| r.dataset == "Zip" && r.k <= r.num_intervals)
            .map(|r| ((r.alg - r.hor) / r.alg.max(1e-12)).abs())
            .collect();
        assert!(!zip_gaps.is_empty());
        assert!(
            zip_gaps.iter().all(|&g| g < 1e-7),
            "HOR must match ALG exactly on Zip with k ≤ |T|: {zip_gaps:?}"
        );
        assert!(s.hor_equal_fraction >= 0.15, "got {}", s.hor_equal_fraction);
        assert!(s.hor_max_gap_pct < 15.0, "HOR gap out of band: {}", s.hor_max_gap_pct);
        let text = s.render();
        assert!(text.contains("INC == ALG always:    true"));
    }
}
