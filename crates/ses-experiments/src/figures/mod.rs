//! One module per table/figure of the paper's evaluation (§4.2).

pub mod ablation;
pub mod constrained;
pub mod dynamic;
pub mod fig10;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod scale;
pub mod summary;
pub mod windowed;

use crate::report::FigureReport;
use crate::runner::ExperimentConfig;

/// Runs a figure by id (`"fig5"` … `"fig10b"`). Returns `None` for unknown
/// ids. (`"summary"` has its own report type; see [`summary::run`].)
pub fn run_figure(id: &str, config: &ExperimentConfig) -> Option<FigureReport> {
    match id {
        "fig5" => Some(fig5::run(config)),
        "fig6" => Some(fig6::run(config)),
        "fig7" => Some(fig7::run(config)),
        "fig8" => Some(fig8::run(config)),
        "fig9" => Some(fig9::run(config)),
        "fig10a" => Some(fig10::run_worst_case(config)),
        "fig10b" => Some(fig10::run_search_space(config)),
        "ablation-schemes" => Some(ablation::run_schemes(config)),
        "ablation-refine" => Some(ablation::run_refinement(config)),
        "dynamic" => Some(dynamic::run(config)),
        "constrained" => Some(constrained::run(config)),
        "windowed" => Some(windowed::run(config)),
        "scale" => Some(scale::run(config)),
        _ => None,
    }
}

/// All figure ids, in paper order, followed by the two ablations and the
/// beyond-the-paper dynamic-workload, constraint-overhead, windowed-
/// ingestion, and storage-scale figures.
pub const ALL_FIGURES: [&str; 13] = [
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10a",
    "fig10b",
    "ablation-schemes",
    "ablation-refine",
    "dynamic",
    "constrained",
    "windowed",
    "scale",
];
