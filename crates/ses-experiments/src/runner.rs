//! Shared machinery for figure runners: scaling knobs and the
//! instance → lineup → records pipeline.

use crate::report::RunRecord;
use serde::{Deserialize, Serialize};
use ses_algorithms::SchedulerKind;
use ses_core::model::Instance;

/// Laptop-scaling knobs for the experiment suite.
///
/// The paper runs up to `|U| = 1M` on a Xeon server with multi-hour budgets;
/// the harness reproduces every figure's *shape* at a configurable user
/// scale. `quick` additionally truncates the heaviest sweep points (e.g.
/// `k = 500`) so the full suite finishes in minutes; `--full` style runs
/// disable it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Users per instance (the paper's default is 100K; harness default is
    /// laptop-sized).
    pub num_users: usize,
    /// Truncate the heaviest sweep points.
    pub quick: bool,
    /// Base RNG seed; sweep points derive their own seeds from it.
    pub seed: u64,
    /// Multiplier on the structural dimensions (`k`, `|E|`, `|T|` sweep
    /// values). `1.0` reproduces the paper's axes; smoke tests use smaller
    /// factors to run every figure end-to-end in milliseconds.
    pub dim_scale: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self { num_users: 400, quick: true, seed: 0x5E5, dim_scale: 1.0 }
    }
}

impl ExperimentConfig {
    /// A configuration for CI-speed smoke runs: few users, truncated sweeps,
    /// structural dimensions at one-tenth of the paper's.
    pub fn smoke() -> Self {
        Self { num_users: 60, quick: true, seed: 0x5E5, dim_scale: 0.1 }
    }

    /// Overrides the user count.
    #[must_use]
    pub fn with_users(mut self, n: usize) -> Self {
        self.num_users = n;
        self
    }

    /// Disables quick-mode truncation.
    #[must_use]
    pub fn full(mut self) -> Self {
        self.quick = false;
        self
    }

    /// Applies `dim_scale` to a structural dimension (floor 2 so degenerate
    /// instances never arise).
    pub fn dim(&self, n: usize) -> usize {
        ((n as f64 * self.dim_scale).round() as usize).max(2)
    }
}

/// Runs every scheduler in `kinds` on `inst` and converts the results into
/// [`RunRecord`]s for the given figure/dataset/sweep-point.
#[allow(clippy::too_many_arguments)]
pub fn run_lineup(
    figure: &str,
    dataset: &str,
    x_label: &str,
    x: f64,
    inst: &Instance,
    k: usize,
    kinds: &[SchedulerKind],
) -> Vec<RunRecord> {
    kinds
        .iter()
        .map(|kind| {
            let res = kind.run(inst, k);
            RunRecord {
                figure: figure.to_string(),
                dataset: dataset.to_string(),
                algorithm: res.algorithm.clone(),
                x_label: x_label.to_string(),
                x,
                k,
                num_events: inst.num_events(),
                num_intervals: inst.num_intervals(),
                num_users: inst.num_users(),
                utility: res.utility,
                computations: res.stats.user_ops,
                examined: res.stats.assignments_examined,
                time_ms: res.elapsed.as_secs_f64() * 1e3,
            }
        })
        .collect()
}

/// The paper's standard method lineup for time/computation plots.
pub fn standard_kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Alg,
        SchedulerKind::Inc,
        SchedulerKind::Hor,
        SchedulerKind::HorI,
        SchedulerKind::Top,
        SchedulerKind::Rand(0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::model::running_example;

    #[test]
    fn lineup_produces_one_record_per_kind() {
        let inst = running_example();
        let kinds = standard_kinds();
        let recs = run_lineup("figX", "RE", "k", 3.0, &inst, 3, &kinds);
        assert_eq!(recs.len(), kinds.len());
        let algs: Vec<&str> = recs.iter().map(|r| r.algorithm.as_str()).collect();
        assert_eq!(algs, vec!["ALG", "INC", "HOR", "HOR-I", "TOP", "RAND"]);
        for r in &recs {
            assert_eq!(r.k, 3);
            assert_eq!(r.num_events, 4);
            assert!(r.utility >= 0.0);
        }
    }

    #[test]
    fn config_builders() {
        let c = ExperimentConfig::default().with_users(99).full();
        assert_eq!(c.num_users, 99);
        assert!(!c.quick);
    }
}
