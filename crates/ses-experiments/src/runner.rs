//! Shared machinery for figure runners: scaling knobs and the
//! instance → lineup → records pipeline.

use crate::report::RunRecord;
use serde::{Deserialize, Serialize};
use ses_algorithms::{RunConfig, SchedulerKind, SesService};
use ses_core::model::Instance;
use ses_core::parallel::{par_chunks_mut, Threads};

/// Laptop-scaling knobs for the experiment suite.
///
/// The paper runs up to `|U| = 1M` on a Xeon server with multi-hour budgets;
/// the harness reproduces every figure's *shape* at a configurable user
/// scale. `quick` additionally truncates the heaviest sweep points (e.g.
/// `k = 500`) so the full suite finishes in minutes; `--full` style runs
/// disable it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Users per instance (the paper's default is 100K; harness default is
    /// laptop-sized).
    pub num_users: usize,
    /// Truncate the heaviest sweep points.
    pub quick: bool,
    /// Base RNG seed; sweep points derive their own seeds from it.
    pub seed: u64,
    /// Multiplier on the structural dimensions (`k`, `|E|`, `|T|` sweep
    /// values). `1.0` reproduces the paper's axes; smoke tests use smaller
    /// factors to run every figure end-to-end in milliseconds.
    pub dim_scale: f64,
    /// Instance-level fan-out: how many sweep rows (dataset × sweep-point
    /// cells) run concurrently. `1` = sequential reference, `0` = machine
    /// width. Reports are byte-identical for every value — rows land in
    /// input order, and each scheduler run inside a parallel sweep is
    /// pinned to one thread (the pool does not nest; see
    /// [`scheduler_threads`](Self::scheduler_threads)).
    #[serde(default = "default_threads")]
    pub threads: usize,
}

/// Serde default for [`ExperimentConfig::threads`]: reports produced before
/// the field existed deserialize as sequential runs.
fn default_threads() -> usize {
    1
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self { num_users: 400, quick: true, seed: 0x5E5, dim_scale: 1.0, threads: 1 }
    }
}

impl ExperimentConfig {
    /// A configuration for CI-speed smoke runs: few users, truncated sweeps,
    /// structural dimensions at one-tenth of the paper's.
    pub fn smoke() -> Self {
        Self { num_users: 60, quick: true, seed: 0x5E5, dim_scale: 0.1, threads: 1 }
    }

    /// Overrides the user count.
    #[must_use]
    pub fn with_users(mut self, n: usize) -> Self {
        self.num_users = n;
        self
    }

    /// Overrides the sweep fan-out width (`0` = machine width).
    #[must_use]
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// The resolved row-level fan-out width.
    pub fn row_threads(&self) -> Threads {
        Threads::new(self.threads)
    }

    /// Thread count for each scheduler run inside a sweep: one thread when
    /// rows fan out (keeping total parallelism at `--threads` and avoiding
    /// nested pool use), the ambient default otherwise. Either way results
    /// are bit-identical — only wall-clock allocation differs.
    pub fn scheduler_threads(&self) -> Threads {
        if self.row_threads().get() > 1 {
            Threads::sequential()
        } else {
            Threads::default()
        }
    }

    /// Disables quick-mode truncation.
    #[must_use]
    pub fn full(mut self) -> Self {
        self.quick = false;
        self
    }

    /// Applies `dim_scale` to a structural dimension (floor 2 so degenerate
    /// instances never arise).
    pub fn dim(&self, n: usize) -> usize {
        ((n as f64 * self.dim_scale).round() as usize).max(2)
    }

    /// Applies [`dim`](Self::dim) to a whole sweep axis, dropping raw
    /// values whose scaled dimension collides with an earlier one — an
    /// aggressive `dim_scale` (or the floor) can map two distinct sweep
    /// points to the same size, which would duplicate x points in reports.
    /// Each drop is reported on stderr.
    pub fn scaled_sweep(&self, raw: &[usize]) -> Vec<usize> {
        let mut kept = Vec::with_capacity(raw.len());
        let mut dims: Vec<usize> = Vec::with_capacity(raw.len());
        for &r in raw {
            let d = self.dim(r);
            if dims.contains(&d) {
                eprintln!(
                    "warning: sweep point {r} scales to duplicate dimension {d} \
                     (dim_scale = {}); dropping it",
                    self.dim_scale
                );
            } else {
                dims.push(d);
                kept.push(r);
            }
        }
        kept
    }
}

/// Runs every scheduler in `kinds` on `inst` and converts the results into
/// [`RunRecord`]s for the given figure/dataset/sweep-point, with the
/// ambient thread resolution.
#[allow(clippy::too_many_arguments)]
pub fn run_lineup(
    figure: &str,
    dataset: &str,
    x_label: &str,
    x: f64,
    inst: &Instance,
    k: usize,
    kinds: &[SchedulerKind],
) -> Vec<RunRecord> {
    run_lineup_threaded(figure, dataset, x_label, x, inst, k, kinds, Threads::default())
}

/// [`run_lineup`] with an explicit per-scheduler thread count (used by
/// parallel sweeps to pin each row to one thread).
///
/// The lineup is a thin client of the session service: one [`SesService`]
/// per call owns the warm scratch pools, so the schedulers after the first
/// run allocation-free. Records are bit-identical to direct
/// `run_configured` calls (the service contract, enforced by
/// `tests/service_equivalence.rs`). The service owns its instance, so each
/// row pays one `Instance` clone — `O(|U|·|E|)`, dwarfed by the lineup's
/// `|T|`-factor scoring sweeps over the same matrices — in exchange for
/// the single code path every entry point now shares.
#[allow(clippy::too_many_arguments)]
pub fn run_lineup_threaded(
    figure: &str,
    dataset: &str,
    x_label: &str,
    x: f64,
    inst: &Instance,
    k: usize,
    kinds: &[SchedulerKind],
    threads: Threads,
) -> Vec<RunRecord> {
    let mut service = SesService::new(inst.clone()).with_threads(threads);
    kinds
        .iter()
        .map(|kind| {
            let res = service.schedule_kind(*kind, k, RunConfig::threaded(threads));
            RunRecord {
                figure: figure.to_string(),
                dataset: dataset.to_string(),
                algorithm: res.algorithm.to_string(),
                x_label: x_label.to_string(),
                x,
                k,
                num_events: inst.num_events(),
                num_intervals: inst.num_intervals(),
                num_users: inst.num_users(),
                utility: res.utility,
                computations: res.stats.user_ops,
                examined: res.stats.assignments_examined,
                time_ms: res.elapsed.as_secs_f64() * 1e3,
                heap_bytes: 0,
            }
        })
        .collect()
}

/// Runs one closure per sweep row across `threads` workers and concatenates
/// the produced records **in input order** — a parallel sweep emits a
/// byte-identical report to the sequential one (golden-file tested), it
/// just finishes sooner. Each row job should run its schedulers with
/// [`ExperimentConfig::scheduler_threads`] so pools never nest.
pub fn par_rows<J, F>(threads: Threads, jobs: &[J], run: F) -> Vec<RunRecord>
where
    J: Sync,
    F: Fn(&J) -> Vec<RunRecord> + Sync,
{
    if threads.is_sequential() || jobs.len() < 2 {
        return jobs.iter().flat_map(&run).collect();
    }
    let mut slots: Vec<Vec<RunRecord>> = Vec::new();
    slots.resize_with(jobs.len(), Vec::new);
    par_chunks_mut(threads, &mut slots, 1, |i, slot| slot[0] = run(&jobs[i]));
    slots.into_iter().flatten().collect()
}

/// The paper's standard method lineup for time/computation plots —
/// delegates to the single canonical table ([`SchedulerKind::paper_lineup`])
/// instead of keeping a duplicate list.
pub fn standard_kinds() -> Vec<SchedulerKind> {
    SchedulerKind::paper_lineup().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::model::running_example;

    #[test]
    fn lineup_produces_one_record_per_kind() {
        let inst = running_example();
        let kinds = standard_kinds();
        let recs = run_lineup("figX", "RE", "k", 3.0, &inst, 3, &kinds);
        assert_eq!(recs.len(), kinds.len());
        let algs: Vec<&str> = recs.iter().map(|r| r.algorithm.as_str()).collect();
        assert_eq!(algs, vec!["ALG", "INC", "HOR", "HOR-I", "TOP", "RAND"]);
        for r in &recs {
            assert_eq!(r.k, 3);
            assert_eq!(r.num_events, 4);
            assert!(r.utility >= 0.0);
        }
    }

    #[test]
    fn config_builders() {
        let c = ExperimentConfig::default().with_users(99).full().with_threads(3);
        assert_eq!(c.num_users, 99);
        assert!(!c.quick);
        assert_eq!(c.row_threads().get(), 3);
        // Parallel sweeps pin scheduler runs to one thread (no nesting).
        assert!(c.scheduler_threads().is_sequential());
    }

    /// Regression: quick-mode scaling mapping two sweep dims to one value
    /// must deduplicate instead of producing colliding sweep points.
    #[test]
    fn scaled_sweep_drops_collisions() {
        // 20 → 2 (floor), 50 → 2, 100 → 2, 150 → 3.
        let c = ExperimentConfig { dim_scale: 0.02, ..ExperimentConfig::default() };
        assert_eq!(c.scaled_sweep(&[20, 50, 100, 150]), vec![20, 150]);
        // At the paper's scale nothing is dropped.
        let c = ExperimentConfig { dim_scale: 1.0, ..c };
        assert_eq!(c.scaled_sweep(&[20, 50, 100, 150]), vec![20, 50, 100, 150]);
    }

    #[test]
    fn par_rows_preserves_input_order() {
        let inst = running_example();
        let kinds = [SchedulerKind::Hor, SchedulerKind::Top];
        let jobs: Vec<usize> = (1..=4).collect();
        let run_jobs = |threads: Threads| {
            par_rows(threads, &jobs, |&k| {
                run_lineup_threaded(
                    "figX",
                    "RE",
                    "k",
                    k as f64,
                    &inst,
                    k,
                    &kinds,
                    Threads::sequential(),
                )
            })
        };
        let seq = run_jobs(Threads::sequential());
        let par = run_jobs(Threads::new(4));
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!((a.x, a.algorithm.as_str()), (b.x, b.algorithm.as_str()));
            assert_eq!(a.utility.to_bits(), b.utility.to_bits(), "x = {} {}", a.x, a.algorithm);
            assert_eq!(a.computations, b.computations);
            assert_eq!(a.examined, b.examined);
        }
    }
}
