//! `ses serve` — run the process as a long-lived session service.
//!
//! Builds one instance from the dataset flags, then answers the versioned
//! JSON-lines protocol on stdio: one `{"v":1,"req":{...}}` request per
//! stdin line, one `{"v":1,"resp":{...}}` response per stdout line.
//! Blank lines and `#` comments are skipped (so request scripts can be
//! annotated), malformed lines come back as `Error` responses without
//! ending the session, and EOF ends the process with exit 0. A failed
//! stdin *read* (e.g. invalid UTF-8 in the byte stream) is answered the
//! same way the protocol answers everything else — one final `io`-coded
//! `Error` response line — and then ends the session as cleanly as EOF;
//! only a broken stdout aborts with exit 1, since the response channel
//! itself is gone.
//!
//! All diagnostics go to **stderr** — stdout carries nothing but response
//! lines, which is what makes `ses serve < script | diff - golden` a
//! meaningful byte comparison.

use crate::args::Args;
use crate::commands::{apply_constraints_flag, dataset_from_flags, storage_from_flags};
use ses_algorithms::service::wire;
use ses_algorithms::{Response, SesService};
use ses_core::error::{ServiceError, SERVICE_PROTOCOL_VERSION};
use ses_core::parallel::Threads;
use std::io::{BufRead, Write};

/// Executes the `serve` subcommand.
pub fn exec(args: &Args) -> Result<(), ServiceError> {
    let (dataset, users, events, intervals, seed) = dataset_from_flags(args)?;
    let (storage, levels) = storage_from_flags(args, dataset, users)?;
    // No --threads flag = the ambient default (SES_THREADS or sequential),
    // so a thread-matrix CI can exercise the server at several widths —
    // responses are bit-identical for every count.
    let threads = match args.opt_flag("threads") {
        Some(_) => Threads::new(args.num_flag("threads", 0usize)?),
        None => Threads::default(),
    };

    let mut inst = dataset.build_with(users, events, intervals, seed, Some(storage), levels);
    let family = apply_constraints_flag(args, &mut inst, seed)?;
    let rules = inst.constraints.len();
    let mut service = SesService::new(inst).with_threads(threads);
    eprintln!(
        "# ses serve: protocol v{SERVICE_PROTOCOL_VERSION}, dataset={} |U|={users} |E|={events} \
         |T|={intervals} seed={seed} threads={threads}{} — one JSON request per line, EOF ends",
        dataset.name(),
        match family {
            Some(f) => format!(" constraints={}({rules} rules)", f.name()),
            None => String::new(),
        },
    );

    let stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();
    // Counts every answered line — including ones that failed wire
    // decoding, which `service.requests_handled()` does not see.
    let mut answered = 0u64;
    for line in stdin.lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                // A failed read must not abort mid-session with no
                // response: answer with one io-coded Error line, note it
                // on stderr, and wind down as cleanly as EOF. (Client
                // scripts keyed on response count stay in sync — every
                // submitted line up to the bad byte has been answered.)
                let err = ServiceError::from(e);
                let resp = wire::encode_response(&Response::Error {
                    code: err.code().to_string(),
                    message: err.to_string(),
                });
                writeln!(stdout, "{resp}")?;
                stdout.flush()?;
                answered += 1;
                eprintln!("# ses serve: stdin read failed ({err}); ending session");
                break;
            }
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let response = service.handle_line(trimmed);
        writeln!(stdout, "{response}")?;
        stdout.flush()?;
        answered += 1;
    }
    eprintln!(
        "# ses serve: EOF after {answered} request lines ({} ops applied)",
        service.ops_applied()
    );
    Ok(())
}
