//! `ses serve` — run the process as a long-lived session service.
//!
//! Builds one instance from the dataset flags (or loads one via
//! `--input`), then answers the versioned JSON-lines protocol on stdio:
//! one `{"v":1,"req":{...}}` request per stdin line, one
//! `{"v":1,"resp":{...}}` response per stdout line. Blank lines and `#`
//! comments are skipped (so request scripts can be annotated), malformed
//! lines come back as `Error` responses without ending the session, and
//! EOF ends the process with exit 0. A failed stdin *read* (e.g. invalid
//! UTF-8 in the byte stream) is answered the same way the protocol
//! answers everything else — one final `io`-coded `Error` response line —
//! and then ends the session as cleanly as EOF; only a broken stdout
//! aborts with exit 1, since the response channel itself is gone.
//!
//! Input is guarded against pathological lines: a request line longer
//! than `--max-line-bytes` (default 16 MiB) is never buffered whole — the
//! reader answers a protocol-coded `Error`, drains the rest of the line,
//! and the session continues. (Nesting depth is capped inside the wire
//! decoder itself.)
//!
//! With `--state-dir DIR` the session is **durable**: every mutating
//! request is appended to a write-ahead log (fsynced) before it is
//! applied, snapshots fold the log every `--snapshot-ops` records, and
//! startup auto-recovers — newest valid snapshot, log replay, torn final
//! record truncated. See `DurableService` for the recovery contract.
//!
//! All diagnostics go to **stderr** — stdout carries nothing but response
//! lines, which is what makes `ses serve < script | diff - golden` a
//! meaningful byte comparison.

use crate::args::Args;
use crate::commands::{
    apply_constraints_flag, dataset_from_flags, input_instance_flag, storage_from_flags,
};
use ses_algorithms::service::wire;
use ses_algorithms::{DurableService, Response, SesService};
use ses_core::error::{ServiceError, SERVICE_PROTOCOL_VERSION};
use ses_core::parallel::Threads;
use std::io::{BufRead, Write};
use std::path::Path;

/// Default `--max-line-bytes`: 16 MiB holds any reasonable `ApplyOps`
/// batch while bounding what one line can make the server buffer.
const DEFAULT_MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// Default `--snapshot-ops`: fold the write-ahead log into a fresh
/// snapshot every this many logged requests.
const DEFAULT_SNAPSHOT_OPS: u64 = 1024;

/// The two session flavors behind the serve loop.
enum Session {
    Plain(SesService),
    Durable(DurableService),
}

impl Session {
    fn handle_line(&mut self, line: &str) -> String {
        match self {
            Session::Plain(s) => s.handle_line(line),
            Session::Durable(s) => s.handle_line(line),
        }
    }

    fn ops_applied(&self) -> u64 {
        match self {
            Session::Plain(s) => s.ops_applied(),
            Session::Durable(s) => s.service().ops_applied(),
        }
    }
}

/// One capped line read.
enum LineRead {
    /// Clean end of input.
    Eof,
    /// A complete line within the cap (without the terminator).
    Line(String),
    /// The line exceeded the cap; its bytes were drained, not buffered.
    Oversized,
}

/// Reads one `\n`-terminated line, buffering at most `cap` bytes. An
/// over-cap line is consumed chunk by chunk (bounded memory) and reported
/// as [`LineRead::Oversized`] so the caller can answer an error and keep
/// the session alive.
fn read_capped_line(reader: &mut impl BufRead, cap: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflowed = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF. A final unterminated line still counts as a line.
            return Ok(if overflowed {
                LineRead::Oversized
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(finish(buf)?)
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if !overflowed {
            if buf.len() + take > cap {
                overflowed = true;
                buf = Vec::new(); // drop what was buffered; keep draining
            } else {
                buf.extend_from_slice(&chunk[..take]);
            }
        }
        let consumed = take + usize::from(newline.is_some());
        reader.consume(consumed);
        if newline.is_some() {
            return Ok(if overflowed { LineRead::Oversized } else { LineRead::Line(finish(buf)?) });
        }
    }
}

/// UTF-8 conversion with the same error shape `BufRead::lines` produces,
/// and the same trailing-`\r` trim.
fn finish(mut buf: Vec<u8>) -> std::io::Result<String> {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "stream did not contain valid UTF-8")
    })
}

/// Executes the `serve` subcommand.
pub fn exec(args: &Args) -> Result<(), ServiceError> {
    let (dataset, users, events, intervals, seed) = dataset_from_flags(args)?;
    let (storage, levels) = storage_from_flags(args, dataset, users)?;
    // No --threads flag = the ambient default (SES_THREADS or sequential),
    // so a thread-matrix CI can exercise the server at several widths —
    // responses are bit-identical for every count.
    let threads = match args.opt_flag("threads") {
        Some(_) => Threads::new(args.num_flag("threads", 0usize)?),
        None => Threads::default(),
    };
    let max_line_bytes = args.num_flag("max-line-bytes", DEFAULT_MAX_LINE_BYTES)?;
    if max_line_bytes == 0 {
        return Err(ServiceError::invalid("--max-line-bytes must be at least 1"));
    }
    if args.opt_flag("snapshot-ops").is_some() && args.opt_flag("state-dir").is_none() {
        return Err(ServiceError::invalid("--snapshot-ops requires --state-dir"));
    }

    let mut inst = match input_instance_flag(args)? {
        Some(inst) => inst,
        None => dataset.build_with(users, events, intervals, seed, Some(storage), levels),
    };
    let (users, events, intervals) = (inst.num_users(), inst.num_events(), inst.num_intervals());
    let family = apply_constraints_flag(args, &mut inst, seed)?;
    let rules = inst.constraints.len();

    let session = match args.opt_flag("state-dir") {
        None => Session::Plain(SesService::new(inst).with_threads(threads)),
        Some(dir) => {
            let snapshot_every = args.num_flag("snapshot-ops", DEFAULT_SNAPSHOT_OPS)?;
            let (svc, report) =
                DurableService::open(Path::new(dir), inst, threads, snapshot_every)?;
            if report.fresh {
                eprintln!("# ses serve: state-dir={dir} fresh durable session (generation 0)");
            } else {
                // Recovery wins over the dataset flags: the instance the
                // session answers from is the recovered one.
                let torn = match report.torn {
                    Some(at) => format!(", torn final record truncated at byte {at}"),
                    None => String::new(),
                };
                let fell = match report.fell_back {
                    0 => String::new(),
                    n => format!(", fell back past {n} corrupt snapshot(s)"),
                };
                eprintln!(
                    "# ses serve: state-dir={dir} recovered generation {} \
                     ({} log records replayed{torn}{fell}); dataset flags ignored",
                    report.generation, report.replayed,
                );
            }
            Session::Durable(svc)
        }
    };
    let mut session = session;
    eprintln!(
        "# ses serve: protocol v{SERVICE_PROTOCOL_VERSION}, dataset={} |U|={users} |E|={events} \
         |T|={intervals} seed={seed} threads={threads}{} — one JSON request per line, EOF ends",
        dataset.name(),
        match family {
            Some(f) => format!(" constraints={}({rules} rules)", f.name()),
            None => String::new(),
        },
    );

    let mut stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();
    // Counts every answered line — including ones that failed wire
    // decoding, which the session's own counters do not see.
    let mut answered = 0u64;
    loop {
        let line = match read_capped_line(&mut stdin, max_line_bytes) {
            Ok(LineRead::Eof) => break,
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::Oversized) => {
                // Guarded input: answer in-protocol and keep serving.
                let err = ServiceError::protocol(format!(
                    "request line exceeds --max-line-bytes ({max_line_bytes})"
                ));
                let resp = wire::encode_response(&Response::Error {
                    code: err.code().to_string(),
                    message: err.to_string(),
                });
                writeln!(stdout, "{resp}")?;
                stdout.flush()?;
                answered += 1;
                continue;
            }
            Err(e) => {
                // A failed read must not abort mid-session with no
                // response: answer with one io-coded Error line, note it
                // on stderr, and wind down as cleanly as EOF. (Client
                // scripts keyed on response count stay in sync — every
                // submitted line up to the bad byte has been answered.)
                let err = ServiceError::from(e);
                let resp = wire::encode_response(&Response::Error {
                    code: err.code().to_string(),
                    message: err.to_string(),
                });
                writeln!(stdout, "{resp}")?;
                stdout.flush()?;
                answered += 1;
                eprintln!("# ses serve: stdin read failed ({err}); ending session");
                break;
            }
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let response = session.handle_line(trimmed);
        writeln!(stdout, "{response}")?;
        stdout.flush()?;
        answered += 1;
    }
    eprintln!(
        "# ses serve: EOF after {answered} request lines ({} ops applied)",
        session.ops_applied()
    );
    Ok(())
}
