//! `ses serve` — run the process as a long-lived session service.
//!
//! Builds one instance from the dataset flags (or loads one via
//! `--input`), then answers the versioned JSON-lines protocol on stdio:
//! one `{"v":1,"req":{...}}` request per stdin line, one
//! `{"v":1,"resp":{...}}` response per stdout line. Blank lines and `#`
//! comments are skipped (so request scripts can be annotated), malformed
//! lines come back as `Error` responses without ending the session, and
//! EOF ends the process with exit 0. A failed stdin *read* (e.g. invalid
//! UTF-8 in the byte stream) is answered the same way the protocol
//! answers everything else — one final `io`-coded `Error` response line —
//! and then ends the session as cleanly as EOF; only a broken stdout
//! aborts with exit 1, since the response channel itself is gone.
//!
//! Input is guarded against pathological lines: a request line longer
//! than `--max-line-bytes` (default 16 MiB) is never buffered whole — the
//! reader answers a protocol-coded `Error`, drains the rest of the line,
//! and the session continues. (Nesting depth is capped inside the wire
//! decoder itself.)
//!
//! With `--state-dir DIR` the session is **durable**: every mutating
//! request is appended to a write-ahead log (fsynced) before it is
//! applied, snapshots fold the log every `--snapshot-ops` records, and
//! startup auto-recovers — newest valid snapshot, log replay, torn final
//! record truncated. See `DurableService` for the recovery contract.
//!
//! With `--listen ADDR` the process becomes a **multi-session TCP
//! server** instead: many named sessions in one process, serialized
//! writes with concurrent lock-free reads per session, graceful
//! SIGTERM/SIGINT drain — see `ses_algorithms::service::net` for the
//! whole contract. The stdio path below is untouched by `--listen`
//! (and its golden transcripts stay byte-identical).
//!
//! All diagnostics go to **stderr** — stdout carries nothing but response
//! lines, which is what makes `ses serve < script | diff - golden` a
//! meaningful byte comparison. Session-attributable diagnostics carry a
//! `[session:NAME]` prefix so multiplexed logs stay readable.

use crate::args::Args;
use crate::commands::{
    apply_constraints_flag, dataset_from_flags, input_instance_flag, storage_from_flags,
};
use ses_algorithms::service::net::{self, read_capped_line, LineRead, DEFAULT_SESSION};
use ses_algorithms::service::wire;
use ses_algorithms::{DurableService, NetConfig, Response, SesService, SessionBackend};
use ses_core::error::{ServiceError, SERVICE_PROTOCOL_VERSION};
use ses_core::parallel::Threads;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Default `--max-line-bytes`: 16 MiB holds any reasonable `ApplyOps`
/// batch while bounding what one line can make the server buffer.
const DEFAULT_MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// Default `--snapshot-ops`: fold the write-ahead log into a fresh
/// snapshot every this many logged requests.
const DEFAULT_SNAPSHOT_OPS: u64 = 1024;

/// Default `--max-sessions` for `--listen` servers.
const DEFAULT_MAX_SESSIONS: usize = 16;

/// Default `--max-connections` for `--listen` servers.
const DEFAULT_MAX_CONNECTIONS: usize = 64;

/// Executes the `serve` subcommand.
pub fn exec(args: &Args) -> Result<(), ServiceError> {
    let (dataset, users, events, intervals, seed) = dataset_from_flags(args)?;
    let (storage, levels) = storage_from_flags(args, dataset, users)?;
    // No --threads flag = the ambient default (SES_THREADS or sequential),
    // so a thread-matrix CI can exercise the server at several widths —
    // responses are bit-identical for every count.
    let threads = match args.opt_flag("threads") {
        Some(_) => Threads::new(args.num_flag("threads", 0usize)?),
        None => Threads::default(),
    };
    let max_line_bytes = args.num_flag("max-line-bytes", DEFAULT_MAX_LINE_BYTES)?;
    if max_line_bytes == 0 {
        return Err(ServiceError::invalid("--max-line-bytes must be at least 1"));
    }
    if args.opt_flag("snapshot-ops").is_some() && args.opt_flag("state-dir").is_none() {
        return Err(ServiceError::invalid("--snapshot-ops requires --state-dir"));
    }
    for flag in ["max-sessions", "max-connections", "idle-timeout-ms"] {
        if args.opt_flag(flag).is_some() && args.opt_flag("listen").is_none() {
            return Err(ServiceError::invalid(format!("--{flag} requires --listen")));
        }
    }

    let mut inst = match input_instance_flag(args)? {
        Some(inst) => inst,
        None => dataset.build_with(users, events, intervals, seed, Some(storage), levels),
    };
    let (users, events, intervals) = (inst.num_users(), inst.num_events(), inst.num_intervals());
    let family = apply_constraints_flag(args, &mut inst, seed)?;
    let rules = inst.constraints.len();

    if let Some(addr) = args.opt_flag("listen") {
        // Networked multi-session serving: the net module owns the whole
        // loop (sessions, connections, shutdown); this function only
        // assembles its config from the flags.
        let max_sessions = args.num_flag("max-sessions", DEFAULT_MAX_SESSIONS)?;
        if max_sessions == 0 {
            return Err(ServiceError::invalid("--max-sessions must be at least 1"));
        }
        let max_connections = args.num_flag("max-connections", DEFAULT_MAX_CONNECTIONS)?;
        if max_connections == 0 {
            return Err(ServiceError::invalid("--max-connections must be at least 1"));
        }
        let idle_ms = args.num_flag("idle-timeout-ms", 0u64)?;
        let cfg = NetConfig {
            listen: addr.to_string(),
            max_sessions,
            max_connections,
            max_line_bytes,
            idle_timeout: (idle_ms > 0).then(|| Duration::from_millis(idle_ms)),
            state_dir: args.opt_flag("state-dir").map(PathBuf::from),
            snapshot_every: args.num_flag("snapshot-ops", DEFAULT_SNAPSHOT_OPS)?,
            threads,
        };
        eprintln!(
            "# ses serve: protocol v{SERVICE_PROTOCOL_VERSION}, dataset={} |U|={users} \
             |E|={events} |T|={intervals} seed={seed} threads={threads}{} — TCP multi-session mode",
            dataset.name(),
            match family {
                Some(f) => format!(" constraints={}({rules} rules)", f.name()),
                None => String::new(),
            },
        );
        net::serve(&cfg, inst)?;
        return Ok(());
    }

    let session = match args.opt_flag("state-dir") {
        None => SessionBackend::Plain(SesService::new(inst).with_threads(threads)),
        Some(dir) => {
            let snapshot_every = args.num_flag("snapshot-ops", DEFAULT_SNAPSHOT_OPS)?;
            let (svc, report) =
                DurableService::open(Path::new(dir), inst, threads, snapshot_every)?;
            if report.fresh {
                eprintln!(
                    "# ses serve [session:{DEFAULT_SESSION}]: state-dir={dir} fresh durable \
                     session (generation 0)"
                );
            } else {
                // Recovery wins over the dataset flags: the instance the
                // session answers from is the recovered one.
                let torn = match report.torn {
                    Some(at) => format!(", torn final record truncated at byte {at}"),
                    None => String::new(),
                };
                let fell = match report.fell_back {
                    0 => String::new(),
                    n => format!(", fell back past {n} corrupt snapshot(s)"),
                };
                eprintln!(
                    "# ses serve [session:{DEFAULT_SESSION}]: state-dir={dir} recovered \
                     generation {} ({} log records replayed{torn}{fell}); dataset flags ignored",
                    report.generation, report.replayed,
                );
            }
            SessionBackend::Durable(svc)
        }
    };
    let mut session = session;
    eprintln!(
        "# ses serve: protocol v{SERVICE_PROTOCOL_VERSION}, dataset={} |U|={users} |E|={events} \
         |T|={intervals} seed={seed} threads={threads}{} — one JSON request per line, EOF ends",
        dataset.name(),
        match family {
            Some(f) => format!(" constraints={}({rules} rules)", f.name()),
            None => String::new(),
        },
    );

    let mut stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();
    // Counts every answered line — including ones that failed wire
    // decoding, which the session's own counters do not see.
    let mut answered = 0u64;
    loop {
        let line = match read_capped_line(&mut stdin, max_line_bytes) {
            Ok(LineRead::Eof) => break,
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::Oversized) => {
                // Guarded input: answer in-protocol and keep serving.
                let err = ServiceError::protocol(format!(
                    "request line exceeds --max-line-bytes ({max_line_bytes})"
                ));
                let resp = wire::encode_response(&Response::Error {
                    code: err.code().to_string(),
                    message: err.to_string(),
                });
                writeln!(stdout, "{resp}")?;
                stdout.flush()?;
                answered += 1;
                continue;
            }
            Err(e) => {
                // A failed read must not abort mid-session with no
                // response: answer with one io-coded Error line, note it
                // on stderr, and wind down as cleanly as EOF. (Client
                // scripts keyed on response count stay in sync — every
                // submitted line up to the bad byte has been answered.)
                let err = ServiceError::from(e);
                let resp = wire::encode_response(&Response::Error {
                    code: err.code().to_string(),
                    message: err.to_string(),
                });
                writeln!(stdout, "{resp}")?;
                stdout.flush()?;
                answered += 1;
                eprintln!(
                    "# ses serve [session:{DEFAULT_SESSION}]: stdin read failed ({err}); \
                     ending session"
                );
                break;
            }
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let response = session.handle_line(trimmed);
        writeln!(stdout, "{response}")?;
        stdout.flush()?;
        answered += 1;
    }
    eprintln!(
        "# ses serve [session:{DEFAULT_SESSION}]: EOF after {answered} request lines ({} ops \
         applied)",
        session.ops_applied()
    );
    Ok(())
}
