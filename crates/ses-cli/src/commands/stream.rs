//! `ses stream` — replay a seeded delta-op stream with incremental repair
//! and compare its work against a full recompute per op.
//!
//! The incremental side is a thin client of [`SesService`]: one `Repair`
//! request arms the warm repairer, then every op flows through
//! `apply_ops`. The per-op full recompute stays a direct cold
//! [`StreamScheduler`] build — it is the measurement baseline, not part of
//! the session.
//!
//! With `--window N` the command switches to windowed ingestion: a bursty,
//! redundancy-heavy feed (`--redundancy`, `--burst`) is chunked into
//! windows of `N` ops, each window coalesced to a minimal batch and
//! repaired in one flush, and the run ends with a sustained ops/sec
//! comparison against op-at-a-time ingestion of the *same* feed — whose
//! end state must match the windowed one bit-for-bit.

use crate::args::Args;
use crate::commands::{
    apply_constraints_flag, dataset_from_flags, input_instance_flag, storage_from_flags,
};
use ses_algorithms::stream::StreamScheduler;
use ses_algorithms::{RunConfig, SchedulerKind, SesService};
use ses_core::delta::{self, DeltaOp};
use ses_core::error::ServiceError;
use ses_core::model::Instance;
use ses_core::parallel::Threads;
use ses_core::stats::Stats;
use ses_datasets::ops::{self, BurstParams, OpStreamParams};

/// Executes the `stream` subcommand.
pub fn exec(args: &Args) -> Result<(), ServiceError> {
    let (dataset, users, events, intervals, seed) = dataset_from_flags(args)?;
    let (storage, levels) = storage_from_flags(args, dataset, users)?;
    let k = args.num_flag("k", 20usize)?;
    let num_ops = args.num_flag("ops", 50usize)?;
    let churn = args.num_flag("churn", 0.3f64)?;
    let user_churn = args.num_flag("user-churn", 0.3f64)?;
    let constraint_churn = args.num_flag("constraint-churn", 0.0f64)?;
    let threads = Threads::new(args.num_flag("threads", 0usize)?);
    let window = args.num_flag("window", 0usize)?;
    let redundancy = args.num_flag("redundancy", 0.5f64)?;
    let burst = args.num_flag("burst", 16usize)?;
    let verify = args.switch("verify");
    let quiet = args.switch("quiet");
    for (name, v) in [
        ("churn", churn),
        ("user-churn", user_churn),
        ("constraint-churn", constraint_churn),
        ("redundancy", redundancy),
    ] {
        if !(0.0..=1.0).contains(&v) {
            return Err(ServiceError::invalid(format!("flag --{name}: {v} is not within [0, 1]")));
        }
    }
    if window == 0 {
        for knob in ["redundancy", "burst"] {
            if args.opt_flag(knob).is_some() {
                return Err(ServiceError::invalid(format!(
                    "flag --{knob} shapes the windowed feed; it requires --window"
                )));
            }
        }
    }

    let mut base = match input_instance_flag(args)? {
        Some(inst) => inst,
        None => dataset.build_with(users, events, intervals, seed, Some(storage), levels),
    };
    let (users, events, intervals) = (base.num_users(), base.num_events(), base.num_intervals());
    let family = apply_constraints_flag(args, &mut base, seed)?;
    let params = OpStreamParams::default()
        .with_ops(num_ops)
        .with_churn(churn)
        .with_user_churn(user_churn)
        .with_constraint_churn(constraint_churn)
        .with_seed(seed ^ 0x0D5);
    if window > 0 {
        let constraints_note = match family {
            Some(f) => format!(
                " constraints={}({} rules) constraint-churn={constraint_churn}",
                f.name(),
                base.constraints.len()
            ),
            None if constraint_churn > 0.0 => format!(" constraint-churn={constraint_churn}"),
            None => String::new(),
        };
        eprintln!(
            "# dataset={} |U|={users} |E|={events} |T|={intervals} k={k} seed={seed} \
             backbone-ops={num_ops} window={window} burst={burst} redundancy={redundancy} \
             threads={threads}{constraints_note}",
            dataset.name(),
        );
        let burst_params = BurstParams::default()
            .with_ops(params)
            .with_burst_len(burst.max(1))
            .with_redundancy(redundancy);
        return exec_windowed(base, &burst_params, window, k, threads, verify, quiet);
    }
    let stream_ops = ops::generate(&base, &params);

    eprintln!(
        "# dataset={} |U|={users} |E|={events} |T|={intervals} k={k} seed={seed} \
         ops={num_ops} churn={churn} user-churn={user_churn} threads={threads}{}",
        dataset.name(),
        match family {
            Some(f) => format!(
                " constraints={}({} rules) constraint-churn={constraint_churn}",
                f.name(),
                base.constraints.len()
            ),
            None if constraint_churn > 0.0 => format!(" constraint-churn={constraint_churn}"),
            None => String::new(),
        },
    );
    let mut service = SesService::new(base.clone()).with_threads(threads);
    let cold = service.repair(k, RunConfig::threaded(threads))?;
    eprintln!(
        "# cold build: {} cells scored, {} user-ops, utility {:.4}",
        cold.report.rescored, cold.report.stats.user_ops, cold.report.utility
    );

    if !quiet {
        println!(
            "{:>4} {:>14} {:>5} {:>6} {:>9} {:>10} {:>12} {:>14} {:>7} {:>12}",
            "#",
            "op",
            "|E|",
            "|U|",
            "rescored",
            "examined",
            "rebuilt-exam",
            "utility",
            "|S|",
            "repair-ms"
        );
    }
    let mut mat = base;
    let mut repair = Stats::new();
    let mut rebuild = Stats::new();
    let mut repair_ms = 0.0;
    let mut rebuild_ms = 0.0;
    for (i, op) in stream_ops.iter().enumerate() {
        delta::apply(&mut mat, op).map_err(|e| ServiceError::delta(i, e))?;
        let rep = service
            .apply_ops(std::slice::from_ref(op))
            .map_err(|e| match e {
                // Re-index the single-op batch error to the stream position.
                ServiceError::Delta { source, .. } => ServiceError::delta(i, source),
                other => other,
            })?
            .pop()
            .expect("one repair report per applied op");
        let cold = StreamScheduler::new(mat.clone(), k, threads);
        repair += rep.stats;
        repair_ms += rep.time_ms;
        rebuild += cold.last_repair().stats;
        rebuild_ms += cold.last_repair().time_ms;
        if verify {
            let inc = SchedulerKind::Inc.run_threaded(&mat, k, threads);
            let repaired = service.current_schedule().expect("warm service has a schedule");
            let utility = service.current_utility().expect("warm service has a utility");
            if inc.schedule.assignments() != repaired.assignments()
                || inc.utility.to_bits() != utility.to_bits()
            {
                return Err(ServiceError::failed(format!(
                    "op {i} ({}): incremental repair diverged from INC recompute \
                     (utility {} vs {})",
                    op.kind(),
                    utility,
                    inc.utility
                )));
            }
        }
        if !quiet {
            println!(
                "{:>4} {:>14} {:>5} {:>6} {:>9} {:>10} {:>12} {:>14.4} {:>7} {:>12.2}",
                i,
                op.kind(),
                mat.num_events(),
                mat.num_users(),
                rep.rescored,
                rep.stats.assignments_examined,
                cold.last_repair().stats.assignments_examined,
                rep.utility,
                rep.schedule_len,
                rep.time_ms,
            );
        }
    }

    let ratio = |a: u64, b: u64| if b == 0 { 1.0 } else { a as f64 / b as f64 };
    println!("\n# totals over {num_ops} ops (repair vs per-op full recompute)");
    println!("{:>16} {:>16} {:>16} {:>8}", "metric", "incremental", "recompute", "ratio");
    for (name, a, b) in [
        ("examined", repair.assignments_examined, rebuild.assignments_examined),
        ("user-ops", repair.user_ops, rebuild.user_ops),
        ("scores", repair.score_computations, rebuild.score_computations),
    ] {
        println!("{name:>16} {a:>16} {b:>16} {:>8.3}", ratio(a, b));
    }
    println!(
        "{:>16} {repair_ms:>16.1} {rebuild_ms:>16.1} {:>8.3}",
        "time-ms",
        if rebuild_ms > 0.0 { repair_ms / rebuild_ms } else { 1.0 }
    );
    println!(
        "# final: |E|={} |U|={} |S|={} utility={:.4}{}",
        service.instance().num_events(),
        service.instance().num_users(),
        service.current_schedule().map_or(0, |s| s.len()),
        service.current_utility().unwrap_or(0.0),
        if verify { " — verified against INC recompute at every op" } else { "" }
    );
    Ok(())
}

/// Windowed ingestion driver: chunk a bursty feed into windows, coalesce
/// and repair each in one flush, then race the same feed op-at-a-time and
/// report sustained ops/sec for both. The two end states must agree
/// bit-for-bit regardless of `--verify`; the switch additionally checks
/// every window against a shadow materialization and an INC recompute.
fn exec_windowed(
    base: Instance,
    burst_params: &BurstParams,
    window: usize,
    k: usize,
    threads: Threads,
    verify: bool,
    quiet: bool,
) -> Result<(), ServiceError> {
    let feed = ops::generate_bursts(&base, burst_params);
    let total = feed.len();
    let span_ms = feed.last().map_or(0, |t| t.at_ms);
    eprintln!("# feed: {total} timestamped ops across {span_ms} ms of simulated arrivals");

    let mut service = SesService::new(base.clone()).with_threads(threads);
    let cold = service.repair(k, RunConfig::threaded(threads))?;
    eprintln!(
        "# cold build: {} cells scored, {} user-ops, utility {:.4}",
        cold.report.rescored, cold.report.stats.user_ops, cold.report.utility
    );

    if !quiet {
        println!(
            "{:>4} {:>5} {:>5} {:>5} {:>6} {:>9} {:>10} {:>14} {:>7} {:>12}",
            "win",
            "ops",
            "coal",
            "|E|",
            "|U|",
            "rescored",
            "examined",
            "utility",
            "|S|",
            "repair-ms"
        );
    }
    let mut mat = base.clone();
    let mut repair = Stats::new();
    let mut coalesced_total = 0usize;
    let mut flush_secs = 0.0f64;
    let mut flushes = 0usize;
    for (w, chunk) in feed.chunks(window).enumerate() {
        let ops: Vec<DeltaOp> = chunk.iter().map(|t| t.op.clone()).collect();
        let start = std::time::Instant::now();
        let (reports, summaries) =
            service.apply_ops_windowed(&ops, window).map_err(|e| match e {
                // Re-index the chunk-relative error to the feed position.
                ServiceError::Delta { op_index, source } => {
                    ServiceError::delta(w * window + op_index, source)
                }
                other => other,
            })?;
        flush_secs += start.elapsed().as_secs_f64();
        flushes += 1;
        let summary = summaries[0];
        let rep = reports.last().expect("one report per op in a warm windowed flush");
        coalesced_total += summary.coalesced;
        repair += rep.stats;
        if verify {
            for (j, op) in ops.iter().enumerate() {
                delta::apply(&mut mat, op).map_err(|e| ServiceError::delta(w * window + j, e))?;
            }
            if *service.instance() != mat {
                return Err(ServiceError::failed(format!(
                    "window {w}: coalesced instance diverged from op-at-a-time materialization"
                )));
            }
            let inc = SchedulerKind::Inc.run_threaded(&mat, k, threads);
            let repaired = service.current_schedule().expect("warm service has a schedule");
            let utility = service.current_utility().expect("warm service has a utility");
            if inc.schedule.assignments() != repaired.assignments()
                || inc.utility.to_bits() != utility.to_bits()
            {
                return Err(ServiceError::failed(format!(
                    "window {w}: windowed repair diverged from INC recompute \
                     (utility {utility} vs {})",
                    inc.utility
                )));
            }
        }
        if !quiet {
            println!(
                "{:>4} {:>5} {:>5} {:>5} {:>6} {:>9} {:>10} {:>14.4} {:>7} {:>12.2}",
                w,
                summary.ops,
                summary.coalesced,
                service.instance().num_events(),
                service.instance().num_users(),
                rep.rescored,
                rep.stats.assignments_examined,
                rep.utility,
                rep.schedule_len,
                rep.time_ms,
            );
        }
    }

    // Race the identical feed op-at-a-time from the same warm start; the
    // end states must be bit-identical (the coalescing soundness bar).
    let mut baseline = SesService::new(base).with_threads(threads);
    baseline.repair(k, RunConfig::threaded(threads))?;
    let start = std::time::Instant::now();
    for (i, timed) in feed.iter().enumerate() {
        baseline.apply_ops(std::slice::from_ref(&timed.op)).map_err(|e| match e {
            ServiceError::Delta { source, .. } => ServiceError::delta(i, source),
            other => other,
        })?;
    }
    let serial_secs = start.elapsed().as_secs_f64();
    let (ws, wu) = (service.current_schedule(), service.current_utility());
    let (bs, bu) = (baseline.current_schedule(), baseline.current_utility());
    if service.instance() != baseline.instance()
        || ws.map(|s| s.assignments().to_vec()) != bs.map(|s| s.assignments().to_vec())
        || wu.map(f64::to_bits) != bu.map(f64::to_bits)
    {
        return Err(ServiceError::failed(
            "windowed end state diverged from op-at-a-time ingestion of the same feed",
        ));
    }

    let rate = |secs: f64| if secs > 0.0 { total as f64 / secs } else { f64::INFINITY };
    println!(
        "\n# sustained: windowed {:.0} ops/sec ({total} ops -> {coalesced_total} after \
         coalescing, {flushes} flushes) vs op-at-a-time {:.0} ops/sec - x{:.2}",
        rate(flush_secs),
        rate(serial_secs),
        if flush_secs > 0.0 { serial_secs / flush_secs } else { f64::INFINITY },
    );
    println!(
        "# final: |E|={} |U|={} |S|={} utility={:.4} — end state bit-identical to \
         op-at-a-time{}",
        service.instance().num_events(),
        service.instance().num_users(),
        service.current_schedule().map_or(0, |s| s.len()),
        service.current_utility().unwrap_or(0.0),
        if verify { "; every window verified against INC recompute" } else { "" }
    );
    Ok(())
}
