//! `ses bench-baseline` — record (or check) the benchmark trajectory.
//!
//! **Record mode** (default): runs the requested criterion bench targets
//! with `CRITERION_JSON` set, collects every benchmark's median/mean/min,
//! and appends one run — annotated with rustc version, git commit, and a
//! free-form label — to `BENCH_BASELINE.json` at the repository root. The
//! committed file is the performance trajectory of the project: every entry
//! is a snapshot that later optimizations (and regressions) are measured
//! against.
//!
//! **Check mode** (`--check FACTOR`): runs the targets fresh (or, with
//! `--from FILE`, reuses the last run recorded in FILE) and compares each
//! benchmark's median against the *last recorded run* in the baseline
//! file. Exits non-zero if any shared benchmark regressed by more than
//! `FACTOR`× — the CI perf-smoke gate (generous factors absorb noisy
//! runners and runner-vs-recording-machine hardware gaps; the CI gate
//! uses 2.0).

use crate::args::Args;
use serde::{Deserialize, Serialize};
use ses_core::error::ServiceError;
use std::path::{Path, PathBuf};
use std::process::Command;

/// The fifteen criterion bench targets of `crates/bench`. The `scale_*`
/// and `persist_restore` targets build 100k/1M-user instances — minutes,
/// not seconds — so the CI perf-smoke gate lists its targets explicitly
/// rather than taking this default set.
const ALL_TARGETS: &[&str] = &[
    "micro_scoring",
    "constrained_feasibility",
    "fig5_vary_k",
    "fig6_vary_intervals",
    "fig7_vary_events",
    "fig8_vary_users",
    "fig9_vary_locations",
    "fig10a_worst_case",
    "fig10b_search_space",
    "ablation",
    "dynamic_stream",
    "windowed_stream",
    "scale_100k",
    "scale_1m",
    "persist_restore",
    "serve_throughput",
];

/// One benchmark's timing summary — the schema of the JSON lines the
/// vendored criterion emits under `CRITERION_JSON`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchResult {
    /// Full benchmark id, e.g. `micro_scoring/assignment_score/dense/t1`.
    id: String,
    /// Median per-sample time in nanoseconds (the comparison metric).
    median_ns: u64,
    /// Mean per-sample time in nanoseconds.
    mean_ns: u64,
    /// Minimum per-sample time in nanoseconds.
    min_ns: u64,
    /// Number of timed samples.
    samples: u64,
}

/// One recorded baseline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BaselineRun {
    /// Free-form annotation (`--label`), e.g. "pre-optimization".
    label: String,
    /// `git rev-parse --short HEAD` at record time ("unknown" outside git).
    commit: String,
    /// `rustc --version` at record time.
    rustc: String,
    /// Unix seconds at record time.
    recorded_at_unix: u64,
    /// Bench targets included in this run.
    targets: Vec<String>,
    /// Every benchmark's summary, in execution order.
    results: Vec<BenchResult>,
}

/// The committed `BENCH_BASELINE.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BaselineFile {
    /// Format version.
    schema: u32,
    /// Recorded runs, oldest first.
    runs: Vec<BaselineRun>,
}

/// Executes the `bench-baseline` subcommand. Argument mistakes surface as
/// usage errors (exit 2); bench failures and regression-gate trips as
/// runtime failures (exit 1).
pub fn exec(args: &Args) -> Result<(), ServiceError> {
    let out = PathBuf::from(args.str_flag("out", "BENCH_BASELINE.json"));
    let label = args.str_flag("label", "snapshot");
    let targets: Vec<String> = match args.opt_flag("targets") {
        None => ALL_TARGETS.iter().map(|s| s.to_string()).collect(),
        Some(spec) => spec.split(',').map(|s| s.trim().to_string()).collect(),
    };
    for t in &targets {
        if !ALL_TARGETS.contains(&t.as_str()) {
            return Err(ServiceError::invalid(format!(
                "unknown bench target '{t}' (known: {})",
                ALL_TARGETS.join(", ")
            )));
        }
    }

    // `--from FILE` reuses the last run recorded in FILE instead of
    // benching again — the CI perf-smoke job records once (artifact) and
    // checks from that record, halving its bench time.
    let results = match args.opt_flag("from") {
        Some(path) => {
            let file = load_baseline(Path::new(path))
                .map_err(ServiceError::failed)?
                .ok_or_else(|| ServiceError::invalid(format!("--from: no baseline at {path}")))?;
            file.runs
                .last()
                .ok_or_else(|| ServiceError::invalid("--from: file holds no runs"))?
                .results
                .clone()
        }
        None => run_targets(&targets).map_err(ServiceError::failed)?,
    };
    match args.opt_flag("check") {
        Some(factor) => {
            let factor: f64 = factor
                .parse()
                .map_err(|_| ServiceError::invalid(format!("--check: cannot parse '{factor}'")))?;
            check_regressions(&out, &results, factor).map_err(ServiceError::failed)
        }
        None => record_run(&out, label, targets, results).map_err(ServiceError::failed),
    }
}

/// Runs each bench target with `CRITERION_JSON` pointed at a scratch file
/// and parses the emitted lines.
fn run_targets(targets: &[String]) -> Result<Vec<BenchResult>, String> {
    let scratch = std::env::temp_dir().join(format!("ses-bench-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&scratch);
    for target in targets {
        eprintln!("# bench-baseline: running target {target}");
        let status = Command::new("cargo")
            .args(["bench", "--bench", target])
            .env("CRITERION_JSON", &scratch)
            .status()
            .map_err(|e| format!("cannot spawn cargo bench: {e}"))?;
        if !status.success() {
            return Err(format!("cargo bench --bench {target} failed ({status})"));
        }
    }
    let raw = std::fs::read_to_string(&scratch)
        .map_err(|e| format!("no bench output at {}: {e}", scratch.display()))?;
    let _ = std::fs::remove_file(&scratch);
    let mut results = Vec::new();
    for line in raw.lines().filter(|l| !l.trim().is_empty()) {
        let r: BenchResult =
            serde_json::from_str(line).map_err(|e| format!("bad bench line '{line}': {e}"))?;
        results.push(r);
    }
    if results.is_empty() {
        return Err("bench run produced no results".into());
    }
    Ok(results)
}

/// Appends one run to the baseline file (creating it if absent) and prints
/// the speedup of every benchmark shared with the previous run.
fn record_run(
    out: &Path,
    label: String,
    targets: Vec<String>,
    results: Vec<BenchResult>,
) -> Result<(), String> {
    let mut file = load_baseline(out)?.unwrap_or(BaselineFile { schema: 1, runs: Vec::new() });
    if let Some(prev) = file.runs.last() {
        print_comparison(prev, &results);
    }
    let run = BaselineRun {
        label,
        commit: git_commit(),
        rustc: rustc_version(),
        recorded_at_unix: unix_now(),
        targets,
        results,
    };
    eprintln!(
        "# bench-baseline: recording run '{}' ({} benchmarks) -> {}",
        run.label,
        run.results.len(),
        out.display()
    );
    file.runs.push(run);
    let json = serde_json::to_string_pretty(&file).map_err(|e| e.to_string())?;
    std::fs::write(out, json + "\n").map_err(|e| format!("cannot write {}: {e}", out.display()))
}

/// Compares fresh results against the last recorded run; errors if any
/// shared benchmark's median regressed by more than `factor`×.
fn check_regressions(out: &Path, fresh: &[BenchResult], factor: f64) -> Result<(), String> {
    let file = load_baseline(out)?
        .ok_or_else(|| format!("--check needs a committed baseline at {}", out.display()))?;
    let prev = file.runs.last().ok_or("baseline file holds no runs")?;
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for f in fresh {
        let Some(p) = prev.results.iter().find(|p| p.id == f.id) else { continue };
        compared += 1;
        let ratio = f.median_ns as f64 / p.median_ns.max(1) as f64;
        let verdict = if ratio > factor { "REGRESSED" } else { "ok" };
        eprintln!(
            "{:<56} committed {:>10} ns  fresh {:>10} ns  x{ratio:.2} {verdict}",
            f.id, p.median_ns, f.median_ns
        );
        if ratio > factor {
            regressions.push(format!("{} regressed {ratio:.2}x (limit {factor}x)", f.id));
        }
    }
    if compared == 0 {
        return Err("no benchmark ids shared with the committed baseline".into());
    }
    if regressions.is_empty() {
        eprintln!("# bench-baseline: {compared} benchmarks within {factor}x of baseline");
        Ok(())
    } else {
        Err(regressions.join("; "))
    }
}

/// Prints per-benchmark speedup vs. a previous run (old median / new median;
/// > 1 is faster).
fn print_comparison(prev: &BaselineRun, fresh: &[BenchResult]) {
    eprintln!("# bench-baseline: speedup vs previous run '{}' ({})", prev.label, prev.commit);
    for f in fresh {
        if let Some(p) = prev.results.iter().find(|p| p.id == f.id) {
            let speedup = p.median_ns as f64 / f.median_ns.max(1) as f64;
            eprintln!(
                "{:<56} {:>10} ns -> {:>10} ns  ({speedup:.2}x)",
                f.id, p.median_ns, f.median_ns
            );
        }
    }
}

fn load_baseline(path: &Path) -> Result<Option<BaselineFile>, String> {
    match std::fs::read_to_string(path) {
        Ok(s) => serde_json::from_str(&s)
            .map(Some)
            .map_err(|e| format!("cannot parse {}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

fn git_commit() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

fn rustc_version() -> String {
    Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
