//! `ses experiment` — regenerate the paper's tables and figures.

use crate::args::Args;
use ses_core::error::ServiceError;
use ses_datasets::params::table1;
use ses_experiments::figures::{self, summary, ALL_FIGURES};
use ses_experiments::ExperimentConfig;

/// Executes the `experiment` subcommand.
pub fn exec(args: &Args) -> Result<(), ServiceError> {
    let which = args.positional.first().cloned().ok_or_else(|| {
        ServiceError::invalid("experiment requires a figure id (fig5…fig10b, summary, params, all)")
    })?;

    let mut config = ExperimentConfig::default()
        .with_users(args.num_flag("users", ExperimentConfig::default().num_users)?);
    config.seed = args.num_flag("seed", config.seed)?;
    // Sweep rows fan out across this many workers (0 = machine width, the
    // default). Reports are byte-identical for every value.
    config.threads = args.num_flag("threads", 0usize)?;
    if args.switch("full") {
        config = config.full();
    }

    match which.as_str() {
        "params" => {
            print_params();
            Ok(())
        }
        "summary" => {
            let s = summary::run(config.num_users, 2);
            print!("{}", s.render());
            if let Some(path) = args.opt_flag("json") {
                let json = serde_json::to_string_pretty(&s)
                    .map_err(|e| ServiceError::failed(e.to_string()))?;
                std::fs::write(path, json)?;
            }
            Ok(())
        }
        "all" => {
            for id in ALL_FIGURES {
                run_one(id, &config, args)?;
            }
            let s = summary::run(config.num_users, 2);
            print!("{}", s.render());
            Ok(())
        }
        id => run_one(id, &config, args),
    }
}

fn run_one(id: &str, config: &ExperimentConfig, args: &Args) -> Result<(), ServiceError> {
    let report = figures::run_figure(id, config).ok_or_else(|| {
        ServiceError::invalid(format!(
            "unknown figure '{id}' (try fig5…fig10b, summary, params, all)"
        ))
    })?;
    print!("{}", report.render());
    if let Some(path) = args.opt_flag("json") {
        let path = suffixed(path, id, "json");
        std::fs::write(&path, report.to_json())
            .map_err(|e| ServiceError::Io { detail: format!("writing {path}: {e}") })?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.opt_flag("csv") {
        let path = suffixed(path, id, "csv");
        std::fs::write(&path, report.to_csv())
            .map_err(|e| ServiceError::Io { detail: format!("writing {path}: {e}") })?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// `results.csv` + `fig5` → `results.fig5.csv` so `experiment all` doesn't
/// overwrite itself.
fn suffixed(path: &str, id: &str, ext: &str) -> String {
    match path.strip_suffix(&format!(".{ext}")) {
        Some(stem) => format!("{stem}.{id}.{ext}"),
        None => format!("{path}.{id}.{ext}"),
    }
}

fn print_params() {
    println!("# Table 1 — parameter space (bold defaults marked *)");
    println!("k:                     50, 70, *100, 200, 500");
    println!("|E|:                   k, 2k, 3k, *5k, 10k");
    println!("|T|:                   k/5, k/2, k, *3k/2, 2k, 3k");
    println!("competing/interval:    U[1,4], U[1,8], *U[1,16], U[1,32], U[1,64]");
    println!("locations:             5, 10, *25, 50, 70");
    println!("resources θ:           10, 20, *30, 50, 100");
    println!("required ξ:            U[1,θ/4], U[1,θ/3], *U[1,θ/2], U[1,3θ/4], U[1,θ]");
    println!("activity σ:            *Uniform, Normal(0.5,0.25)");
    println!("|U| (synthetic):       10K, 50K, *100K, 500K, 1M   (harness default: scaled)");
    println!("interest µ (synth):    *Uniform, Normal(0.5,0.25), Zipf(1,*2,3)");
    println!();
    println!("sweep constants exposed in ses_datasets::params::table1:");
    println!("  K                = {:?}", table1::K);
    println!("  FIG6_INTERVALS   = {:?}", table1::FIG6_INTERVALS);
    println!("  FIG7_EVENTS      = {:?}", table1::FIG7_EVENTS);
    println!("  LOCATIONS        = {:?}", table1::LOCATIONS);
    println!("  USERS            = {:?}", table1::USERS);
}
