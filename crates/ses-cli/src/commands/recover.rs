//! `ses recover` — inspect a durable session's state directory.
//!
//! A read-only dry run of the recovery `ses serve --state-dir` performs on
//! startup: it scans the snapshot and write-ahead-log generations, walks
//! snapshots newest-first past any that fail their checksums, replays the
//! surviving log records in memory, and prints what a real recovery would
//! restore — **without** truncating torn tails, compacting, or writing a
//! single byte. Safe to run against the state directory of a live server.
//!
//! Both on-disk layouts are understood: a single-session directory (stdio
//! `serve --state-dir`, generation files at the top level) and the
//! multi-session layout `serve --listen` writes (one `DIR/<name>`
//! subdirectory per session) — the latter prints one report per session,
//! in sorted name order, exactly the set a server boot would recover.
//!
//! Exit codes follow the corruption taxonomy: a directory that recovers
//! (even with a torn tail or a fallen-back generation) exits 0 with the
//! report below; a directory where no generation survives exits 1 with a
//! `corrupt`-coded error; a missing `--state-dir` flag is a usage error
//! (exit 2).

use crate::args::Args;
use ses_algorithms::service::durable;
use ses_algorithms::service::net;
use ses_core::error::ServiceError;
use ses_core::parallel::Threads;
use std::path::Path;

/// Formats a generation list like `0, 3, 4` (or `none`).
fn gen_list(gens: &[u64]) -> String {
    if gens.is_empty() {
        return "none".to_string();
    }
    gens.iter().map(u64::to_string).collect::<Vec<_>>().join(", ")
}

/// Session subdirectories of a multi-session state dir: entries whose
/// name is a valid session name and that hold at least one generation
/// file, sorted. Empty for a single-session (top-level) layout.
fn session_subdirs(dir: &Path) -> Result<Vec<String>, ServiceError> {
    let mut names = Vec::new();
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ServiceError::Io { detail: format!("{}: {e}", dir.display()) })?;
    for entry in entries {
        let entry =
            entry.map_err(|e| ServiceError::Io { detail: format!("{}: {e}", dir.display()) })?;
        let Ok(name) = entry.file_name().into_string() else { continue };
        if net::validate_session_name(&name).is_err() || !entry.path().is_dir() {
            continue;
        }
        let has_generations = std::fs::read_dir(entry.path())
            .map(|sub| {
                sub.flatten().any(|f| {
                    let n = f.file_name();
                    let n = n.to_string_lossy();
                    n.starts_with("snapshot-") || n.starts_with("wal-")
                })
            })
            .unwrap_or(false);
        if has_generations {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

/// Prints one session's recovery report (everything below `state-dir:`).
fn print_report(ins: &durable::Inspection) {
    println!("snapshots:        {}", gen_list(&ins.generations));
    println!("write-ahead logs: {}", gen_list(&ins.wal_generations));
    println!("recovers from:    generation {}", ins.report.generation);
    println!("log replay:       {} record(s)", ins.report.replayed);
    match ins.report.torn {
        Some(at) => println!(
            "torn tail:        yes — final record truncated at byte {at} (recovery would drop it)"
        ),
        None => println!("torn tail:        no"),
    }
    match ins.report.fell_back {
        0 => println!("fallback:         no"),
        n => println!(
            "fallback:         yes — {n} newer snapshot generation(s) corrupt (recovery would \
             compact immediately)"
        ),
    }
    let s = &ins.snapshot;
    println!(
        "session state:    |U|={} |E|={} |T|={} ops_applied={} constraints={} warm={}",
        s.users, s.events, s.intervals, s.ops_applied, s.constraints, s.warm
    );
    match &s.schedule {
        Some(sched) => println!(
            "schedule:         {} assignment(s), utility {}",
            sched.assignments.len(),
            sched.utility
        ),
        None => println!("schedule:         none"),
    }
}

/// Executes the `recover` subcommand.
pub fn exec(args: &Args) -> Result<(), ServiceError> {
    let Some(dir) = args.opt_flag("state-dir") else {
        return Err(ServiceError::invalid("recover requires --state-dir DIR"));
    };
    // Replay runs real schedulers; the thread count changes nothing but
    // wall time (results are bit-identical for every count).
    let threads = match args.opt_flag("threads") {
        Some(_) => Threads::new(args.num_flag("threads", 0usize)?),
        None => Threads::default(),
    };
    let path = Path::new(dir);

    let sessions = if path.is_dir() { session_subdirs(path)? } else { Vec::new() };
    if sessions.is_empty() {
        // Single-session layout (stdio `serve --state-dir`).
        let ins = durable::inspect(path, threads)?;
        println!("state-dir:        {dir}");
        print_report(&ins);
        return Ok(());
    }

    // Multi-session layout (`serve --listen --state-dir`): one report per
    // session, the exact set a server boot would recover.
    println!("state-dir:        {dir} — multi-session ({})", sessions.len());
    for name in &sessions {
        let ins = durable::inspect(&path.join(name), threads)?;
        println!();
        println!("[session:{name}]");
        print_report(&ins);
    }
    Ok(())
}
