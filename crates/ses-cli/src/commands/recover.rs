//! `ses recover` — inspect a durable session's state directory.
//!
//! A read-only dry run of the recovery `ses serve --state-dir` performs on
//! startup: it scans the snapshot and write-ahead-log generations, walks
//! snapshots newest-first past any that fail their checksums, replays the
//! surviving log records in memory, and prints what a real recovery would
//! restore — **without** truncating torn tails, compacting, or writing a
//! single byte. Safe to run against the state directory of a live server.
//!
//! Exit codes follow the corruption taxonomy: a directory that recovers
//! (even with a torn tail or a fallen-back generation) exits 0 with the
//! report below; a directory where no generation survives exits 1 with a
//! `corrupt`-coded error; a missing `--state-dir` flag is a usage error
//! (exit 2).

use crate::args::Args;
use ses_algorithms::service::durable;
use ses_core::error::ServiceError;
use ses_core::parallel::Threads;
use std::path::Path;

/// Formats a generation list like `0, 3, 4` (or `none`).
fn gen_list(gens: &[u64]) -> String {
    if gens.is_empty() {
        return "none".to_string();
    }
    gens.iter().map(u64::to_string).collect::<Vec<_>>().join(", ")
}

/// Executes the `recover` subcommand.
pub fn exec(args: &Args) -> Result<(), ServiceError> {
    let Some(dir) = args.opt_flag("state-dir") else {
        return Err(ServiceError::invalid("recover requires --state-dir DIR"));
    };
    // Replay runs real schedulers; the thread count changes nothing but
    // wall time (results are bit-identical for every count).
    let threads = match args.opt_flag("threads") {
        Some(_) => Threads::new(args.num_flag("threads", 0usize)?),
        None => Threads::default(),
    };
    let ins = durable::inspect(Path::new(dir), threads)?;

    println!("state-dir:        {dir}");
    println!("snapshots:        {}", gen_list(&ins.generations));
    println!("write-ahead logs: {}", gen_list(&ins.wal_generations));
    println!("recovers from:    generation {}", ins.report.generation);
    println!("log replay:       {} record(s)", ins.report.replayed);
    match ins.report.torn {
        Some(at) => println!(
            "torn tail:        yes — final record truncated at byte {at} (recovery would drop it)"
        ),
        None => println!("torn tail:        no"),
    }
    match ins.report.fell_back {
        0 => println!("fallback:         no"),
        n => println!(
            "fallback:         yes — {n} newer snapshot generation(s) corrupt (recovery would \
             compact immediately)"
        ),
    }
    let s = &ins.snapshot;
    println!(
        "session state:    |U|={} |E|={} |T|={} ops_applied={} constraints={} warm={}",
        s.users, s.events, s.intervals, s.ops_applied, s.constraints, s.warm
    );
    match &s.schedule {
        Some(sched) => println!(
            "schedule:         {} assignment(s), utility {}",
            sched.assignments.len(),
            sched.utility
        ),
        None => println!("schedule:         none"),
    }
    Ok(())
}
