//! `ses run` — build one instance, run a lineup of schedulers, print a
//! comparison table.

use crate::args::Args;
use crate::commands::dataset_from_flags;
use ses_algorithms::SchedulerKind;
use ses_core::parallel::Threads;

/// Executes the `run` subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let (dataset, users, events, intervals, seed) = dataset_from_flags(args)?;
    let k = args.num_flag("k", 20usize)?;
    // Worker threads for the schedulers (0 = machine width, the default).
    // Results are bit-identical for every count — only wall time changes.
    let threads = Threads::new(args.num_flag("threads", 0usize)?);

    let kinds: Vec<SchedulerKind> = match args.opt_flag("algorithms") {
        None => SchedulerKind::paper_lineup().to_vec(),
        Some(spec) => spec
            .split(',')
            .map(|s| {
                SchedulerKind::parse(s.trim()).ok_or_else(|| format!("unknown algorithm '{s}'"))
            })
            .collect::<Result<_, _>>()?,
    };

    eprintln!(
        "# dataset={} |U|={users} |E|={events} |T|={intervals} k={k} seed={seed} threads={threads}",
        dataset.name()
    );
    let inst = dataset.build(users, events, intervals, seed);

    println!(
        "{:>8} {:>14} {:>10} {:>16} {:>14} {:>12} {:>10}",
        "method", "utility", "|S|", "computations", "examined", "updates", "time"
    );
    for kind in kinds {
        let res = kind.run_threaded(&inst, k, threads);
        println!(
            "{:>8} {:>14.4} {:>10} {:>16} {:>14} {:>12} {:>9.1}ms",
            res.algorithm,
            res.utility,
            res.schedule.len(),
            res.stats.user_ops,
            res.stats.assignments_examined,
            res.stats.score_updates,
            res.elapsed.as_secs_f64() * 1e3,
        );
    }
    Ok(())
}
