//! `ses run` — build one instance, run a lineup of schedulers, print a
//! comparison table (optionally with the bound-first gate and a per-phase
//! timing breakdown).
//!
//! A thin client of [`SesService`]: the lineup resolves through the
//! service's [`SchedulerRegistry`] (no local name table) and every run
//! reuses the service's warm per-scheduler scratch pools. Results are
//! bit-identical to direct `run_configured` calls.
//!
//! [`SchedulerRegistry`]: ses_algorithms::SchedulerRegistry

use crate::args::Args;
use crate::commands::{
    apply_constraints_flag, dataset_from_flags, input_instance_flag, storage_from_flags,
};
use ses_algorithms::{RunConfig, SesService};
use ses_core::error::ServiceError;
use ses_core::parallel::Threads;

/// Executes the `run` subcommand.
pub fn exec(args: &Args) -> Result<(), ServiceError> {
    let (dataset, users, events, intervals, seed) = dataset_from_flags(args)?;
    let (storage, levels) = storage_from_flags(args, dataset, users)?;
    let k = args.num_flag("k", 20usize)?;
    // Worker threads for the schedulers (0 = machine width, the default).
    // Results are bit-identical for every count — only wall time changes.
    let threads = Threads::new(args.num_flag("threads", 0usize)?);
    let gate = args.switch("gate");
    let profile = args.switch("profile");
    let cfg = RunConfig::threaded(threads).with_bound_gate(gate).with_profile(profile);

    let mut inst = match input_instance_flag(args)? {
        Some(inst) => inst,
        None => dataset.build_with(users, events, intervals, seed, Some(storage), levels),
    };
    // The header echoes the instance actually scheduled — with `--input`
    // its shape comes from the file, not the dataset flags.
    let (users, events, intervals) = (inst.num_users(), inst.num_events(), inst.num_intervals());
    let family = apply_constraints_flag(args, &mut inst, seed)?;
    eprintln!(
        "# dataset={} |U|={users} |E|={events} |T|={intervals} k={k} seed={seed} threads={threads}\
         {}{}{}",
        dataset.name(),
        if gate { " gate=on" } else { "" },
        if profile { " profile=on" } else { "" },
        match family {
            Some(f) => format!(" constraints={}({} rules)", f.name(), inst.constraints.len()),
            None => String::new(),
        },
    );
    if profile {
        eprintln!(
            "# storage={storage} levels={levels} heap={:.1} MiB (interest {:.1} MiB)",
            inst.heap_bytes() as f64 / (1024.0 * 1024.0),
            inst.event_interest.heap_bytes() as f64 / (1024.0 * 1024.0),
        );
    }
    // One service for the whole lineup: the registry resolves names and the
    // per-scheduler scratch pools make repeat runs allocation-free.
    let mut service = SesService::new(inst).with_threads(threads);

    // Canonical `&'static str` names outlive the registry borrow, so the
    // lineup costs no allocation per name.
    let lineup: Vec<&'static str> = match args.opt_flag("algorithms") {
        None => {
            let reg = service.registry();
            reg.paper_indices().into_iter().map(|i| reg.name(i)).collect()
        }
        Some(spec) => {
            let reg = service.registry();
            spec.split(',')
                // Resolve eagerly so a typo fails (exit 2) before any run.
                .map(|s| reg.resolve(s.trim()).map(|i| reg.name(i)))
                .collect::<Result<_, _>>()?
        }
    };

    println!(
        "{:>8} {:>14} {:>10} {:>16} {:>14} {:>12} {:>10} {:>10}",
        "method", "utility", "|S|", "computations", "examined", "updates", "skips", "time"
    );
    for name in &lineup {
        let res = service.schedule(name, k, cfg)?;
        println!(
            "{:>8} {:>14.4} {:>10} {:>16} {:>14} {:>12} {:>10} {:>9.1}ms",
            res.algorithm,
            res.utility,
            res.schedule.len(),
            res.stats.user_ops,
            res.stats.assignments_examined,
            res.stats.score_updates,
            res.stats.bound_skips,
            res.elapsed.as_secs_f64() * 1e3,
        );
        if let Some(p) = res.profile {
            let total = res.elapsed.as_nanos().max(1) as f64;
            let ms = |ns: u64| ns as f64 / 1e6;
            let pct = |ns: u64| 100.0 * ns as f64 / total;
            let other = res.elapsed.as_nanos() as u64
                - (p.setup_ns + p.score_ns + p.apply_ns).min(res.elapsed.as_nanos() as u64);
            println!(
                "         profile: setup {:>8.2}ms ({:>4.1}%) | score {:>8.2}ms ({:>4.1}%, {} calls) \
                 | apply {:>8.2}ms ({:>4.1}%, {} calls) | other {:>8.2}ms",
                ms(p.setup_ns),
                pct(p.setup_ns),
                ms(p.score_ns),
                pct(p.score_ns),
                p.scores,
                ms(p.apply_ns),
                pct(p.apply_ns),
                p.applies,
                ms(other),
            );
        }
    }
    Ok(())
}
