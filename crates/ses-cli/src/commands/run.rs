//! `ses run` — build one instance, run a lineup of schedulers, print a
//! comparison table (optionally with the bound-first gate and a per-phase
//! timing breakdown).

use crate::args::Args;
use crate::commands::dataset_from_flags;
use ses_algorithms::{RunConfig, SchedulerKind, Scratch};
use ses_core::parallel::Threads;

/// Executes the `run` subcommand.
pub fn exec(args: &Args) -> Result<(), String> {
    let (dataset, users, events, intervals, seed) = dataset_from_flags(args)?;
    let k = args.num_flag("k", 20usize)?;
    // Worker threads for the schedulers (0 = machine width, the default).
    // Results are bit-identical for every count — only wall time changes.
    let threads = Threads::new(args.num_flag("threads", 0usize)?);
    let gate = args.switch("gate");
    let profile = args.switch("profile");
    let cfg = RunConfig::threaded(threads).with_bound_gate(gate).with_profile(profile);

    let kinds: Vec<SchedulerKind> = match args.opt_flag("algorithms") {
        None => SchedulerKind::paper_lineup().to_vec(),
        Some(spec) => spec
            .split(',')
            .map(|s| {
                SchedulerKind::parse(s.trim()).ok_or_else(|| format!("unknown algorithm '{s}'"))
            })
            .collect::<Result<_, _>>()?,
    };

    eprintln!(
        "# dataset={} |U|={users} |E|={events} |T|={intervals} k={k} seed={seed} threads={threads}\
         {}{}",
        dataset.name(),
        if gate { " gate=on" } else { "" },
        if profile { " profile=on" } else { "" },
    );
    let inst = dataset.build(users, events, intervals, seed);

    println!(
        "{:>8} {:>14} {:>10} {:>16} {:>14} {:>12} {:>10} {:>10}",
        "method", "utility", "|S|", "computations", "examined", "updates", "skips", "time"
    );
    // One scratch for the whole lineup: after the first scheduler the
    // candidate tables and lists are reused, not re-allocated.
    let mut scratch = Scratch::new();
    for kind in kinds {
        let res = kind.run_configured(&inst, k, cfg, &mut scratch);
        println!(
            "{:>8} {:>14.4} {:>10} {:>16} {:>14} {:>12} {:>10} {:>9.1}ms",
            res.algorithm,
            res.utility,
            res.schedule.len(),
            res.stats.user_ops,
            res.stats.assignments_examined,
            res.stats.score_updates,
            res.stats.bound_skips,
            res.elapsed.as_secs_f64() * 1e3,
        );
        if let Some(p) = res.profile {
            let total = res.elapsed.as_nanos().max(1) as f64;
            let ms = |ns: u64| ns as f64 / 1e6;
            let pct = |ns: u64| 100.0 * ns as f64 / total;
            let other = res.elapsed.as_nanos() as u64
                - (p.setup_ns + p.score_ns + p.apply_ns).min(res.elapsed.as_nanos() as u64);
            println!(
                "         profile: setup {:>8.2}ms ({:>4.1}%) | score {:>8.2}ms ({:>4.1}%, {} calls) \
                 | apply {:>8.2}ms ({:>4.1}%, {} calls) | other {:>8.2}ms",
                ms(p.setup_ns),
                pct(p.setup_ns),
                ms(p.score_ns),
                pct(p.score_ns),
                p.scores,
                ms(p.apply_ns),
                pct(p.apply_ns),
                p.applies,
                ms(other),
            );
        }
    }
    Ok(())
}
