//! `ses generate` — build an instance and serialize it to JSON for external
//! tooling or archival.

use crate::args::Args;
use crate::commands::{dataset_from_flags, storage_from_flags};
use ses_core::error::ServiceError;

/// Executes the `generate` subcommand.
pub fn exec(args: &Args) -> Result<(), ServiceError> {
    let (dataset, users, events, intervals, seed) = dataset_from_flags(args)?;
    let (storage, levels) = storage_from_flags(args, dataset, users)?;
    let out = args
        .opt_flag("out")
        .ok_or_else(|| ServiceError::invalid("generate requires --out <path>"))?
        .to_string();

    let inst = dataset.build_with(users, events, intervals, seed, Some(storage), levels);
    let json = serde_json::to_string(&inst).map_err(|e| ServiceError::failed(e.to_string()))?;
    std::fs::write(&out, json)
        .map_err(|e| ServiceError::Io { detail: format!("writing {out}: {e}") })?;
    eprintln!(
        "wrote {} ({} events, {} intervals, {} users, {} competing)",
        out,
        inst.num_events(),
        inst.num_intervals(),
        inst.num_users(),
        inst.num_competing()
    );
    Ok(())
}
