//! Subcommand implementations.

pub mod bench_baseline;
pub mod experiment;
pub mod generate;
pub mod recover;
pub mod run;
pub mod serve;
pub mod stream;

use crate::args::Args;
use ses_core::error::ServiceError;
use ses_core::model::{Instance, StorageKind};
use ses_datasets::{ConstraintFamily, Dataset};

/// Hard ceiling on `--users`: anything above this is almost certainly a
/// typo (the paper's largest axis is 1M), and rejecting it with a usage
/// error beats attempting a multi-hour, memory-exhausting build.
pub(crate) const MAX_USERS: usize = 16_777_216;

/// Default quantization level count when the compressed layout is in play
/// and `--levels` was not given: keeps the dictionary `u16`-sized instead of
/// letting continuous draws intern one code per cell.
pub(crate) const DEFAULT_COMPRESSED_LEVELS: usize = 256;

/// Shared flag handling: dataset + shape + seed. Rejects out-of-range user
/// counts as usage errors (exit 2) before any memory is committed.
pub(crate) fn dataset_from_flags(
    args: &Args,
) -> Result<(Dataset, usize, usize, usize, u64), ServiceError> {
    let name = args.str_flag("dataset", "unf");
    let dataset = Dataset::parse(&name)
        .ok_or_else(|| ServiceError::invalid(format!("unknown dataset '{name}'")))?;
    let users = args.num_flag("users", 400usize)?;
    if users == 0 {
        return Err(ServiceError::invalid("--users must be at least 1"));
    }
    if users > MAX_USERS {
        return Err(ServiceError::invalid(format!(
            "--users {users} exceeds the supported maximum {MAX_USERS}"
        )));
    }
    let events = args.num_flag("events", 200usize)?;
    let intervals = args.num_flag("intervals", 30usize)?;
    let seed = args.num_flag("seed", 0x5E5u64)?;
    Ok((dataset, users, events, intervals, seed))
}

/// Shared `--storage <auto|dense|sparse|compressed>` + `--levels <n>`
/// handling. `auto` (the default) defers to [`Dataset::auto_storage`]:
/// native layouts at small scale, compressed at 100k+ users. When the
/// resolved layout is compressed and `--levels` was not given, levels
/// default to [`DEFAULT_COMPRESSED_LEVELS`].
pub(crate) fn storage_from_flags(
    args: &Args,
    dataset: Dataset,
    users: usize,
) -> Result<(StorageKind, usize), ServiceError> {
    let storage = match args.opt_flag("storage") {
        None | Some("auto") => dataset.auto_storage(users),
        Some(s) => StorageKind::parse(s).ok_or_else(|| {
            ServiceError::invalid(format!(
                "unknown storage layout '{s}' (known: auto, dense, sparse, compressed)"
            ))
        })?,
    };
    let levels = match args.num_flag("levels", 0usize)? {
        0 if storage == StorageKind::Compressed && args.opt_flag("levels").is_none() => {
            DEFAULT_COMPRESSED_LEVELS
        }
        n if n > u16::MAX as usize + 1 => {
            return Err(ServiceError::invalid(format!(
                "--levels {n} exceeds the dictionary-friendly maximum {}",
                u16::MAX as usize + 1
            )))
        }
        n => n,
    };
    Ok((storage, levels))
}

/// Shared `--input FILE` handling for `run`/`stream`/`serve`: loads the
/// JSON instance `ses generate` wrote instead of building from the
/// dataset flags. `Ok(None)` when the flag is absent. An unreadable file
/// is an I/O failure (exit 1); a file that reads but does not parse — or
/// parses into an instance that fails its own invariants — is typed
/// corruption (exit 1, code `corrupt`), never a partial build.
pub(crate) fn input_instance_flag(args: &Args) -> Result<Option<Instance>, ServiceError> {
    let Some(path) = args.opt_flag("input") else {
        return Ok(None);
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| ServiceError::Io { detail: format!("{path}: {e}") })?;
    let inst: Instance = serde_json::from_str(&text)
        .map_err(|e| ServiceError::corrupt(format!("instance file {path}: {e}")))?;
    inst.validate().map_err(|e| {
        ServiceError::corrupt(format!("instance file {path} fails validation: {e}"))
    })?;
    Ok(Some(inst))
}

/// Shared `--constraints <preset>` handling: parses the constraint family
/// and installs its seeded set on `inst`. Returns the family (for header
/// echoes) or `None` when the flag is absent.
pub(crate) fn apply_constraints_flag(
    args: &Args,
    inst: &mut Instance,
    seed: u64,
) -> Result<Option<ConstraintFamily>, ServiceError> {
    let Some(name) = args.opt_flag("constraints") else {
        return Ok(None);
    };
    let family = ConstraintFamily::parse(name).ok_or_else(|| {
        let known: Vec<&str> = ConstraintFamily::ALL.iter().map(|f| f.name()).collect();
        ServiceError::invalid(format!(
            "unknown constraint family '{name}' (known: {})",
            known.join(", ")
        ))
    })?;
    family.apply(inst, seed);
    Ok(Some(family))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string)).unwrap()
    }

    #[test]
    fn user_count_range_is_a_usage_error() {
        let err = dataset_from_flags(&args("run --users 0")).unwrap_err();
        assert!(err.is_usage(), "{err}");
        let err = dataset_from_flags(&args("run --users 16777217")).unwrap_err();
        assert!(err.is_usage(), "{err}");
        assert!(err.to_string().contains("16777217"), "{err}");
        assert!(dataset_from_flags(&args("run --users 16777216")).is_ok());
    }

    #[test]
    fn storage_flag_parses_and_auto_selects() {
        let parse = |s: &str, users: usize| storage_from_flags(&args(s), Dataset::Unf, users);
        // Explicit layouts pass through.
        assert_eq!(parse("run --storage sparse", 400).unwrap(), (StorageKind::Sparse, 0));
        // Auto: native below the threshold, compressed at it — with the
        // default level count kicking in only for compressed.
        assert_eq!(parse("run", 400).unwrap(), (StorageKind::Dense, 0));
        assert_eq!(
            parse("run", 100_000).unwrap(),
            (StorageKind::Compressed, DEFAULT_COMPRESSED_LEVELS)
        );
        assert_eq!(
            parse("run --storage auto", 100_000).unwrap(),
            (StorageKind::Compressed, DEFAULT_COMPRESSED_LEVELS)
        );
        // An explicit --levels (even 0) overrides the compressed default.
        assert_eq!(
            parse("run --storage compressed --levels 0", 400).unwrap(),
            (StorageKind::Compressed, 0)
        );
        assert_eq!(
            parse("run --storage compressed --levels 64", 400).unwrap(),
            (StorageKind::Compressed, 64)
        );
        // Meetup's native layout is sparse.
        assert_eq!(
            storage_from_flags(&args("run"), Dataset::Meetup, 400).unwrap(),
            (StorageKind::Sparse, 0)
        );
    }

    #[test]
    fn bad_storage_or_levels_is_a_usage_error() {
        let err =
            storage_from_flags(&args("run --storage columnar"), Dataset::Unf, 10).unwrap_err();
        assert!(err.is_usage(), "{err}");
        assert!(err.to_string().contains("columnar"), "{err}");
        let err = storage_from_flags(&args("run --levels 70000"), Dataset::Unf, 10).unwrap_err();
        assert!(err.is_usage(), "{err}");
        assert!(storage_from_flags(&args("run --levels 65536"), Dataset::Unf, 10).is_ok());
    }
}
