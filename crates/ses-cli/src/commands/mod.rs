//! Subcommand implementations.

pub mod bench_baseline;
pub mod experiment;
pub mod generate;
pub mod run;
pub mod serve;
pub mod stream;

use crate::args::Args;
use ses_core::error::ServiceError;
use ses_core::model::Instance;
use ses_datasets::{ConstraintFamily, Dataset};

/// Shared flag handling: dataset + shape + seed.
pub(crate) fn dataset_from_flags(
    args: &Args,
) -> Result<(Dataset, usize, usize, usize, u64), ServiceError> {
    let name = args.str_flag("dataset", "unf");
    let dataset = Dataset::parse(&name)
        .ok_or_else(|| ServiceError::invalid(format!("unknown dataset '{name}'")))?;
    let users = args.num_flag("users", 400usize)?;
    let events = args.num_flag("events", 200usize)?;
    let intervals = args.num_flag("intervals", 30usize)?;
    let seed = args.num_flag("seed", 0x5E5u64)?;
    Ok((dataset, users, events, intervals, seed))
}

/// Shared `--constraints <preset>` handling: parses the constraint family
/// and installs its seeded set on `inst`. Returns the family (for header
/// echoes) or `None` when the flag is absent.
pub(crate) fn apply_constraints_flag(
    args: &Args,
    inst: &mut Instance,
    seed: u64,
) -> Result<Option<ConstraintFamily>, ServiceError> {
    let Some(name) = args.opt_flag("constraints") else {
        return Ok(None);
    };
    let family = ConstraintFamily::parse(name).ok_or_else(|| {
        let known: Vec<&str> = ConstraintFamily::ALL.iter().map(|f| f.name()).collect();
        ServiceError::invalid(format!(
            "unknown constraint family '{name}' (known: {})",
            known.join(", ")
        ))
    })?;
    family.apply(inst, seed);
    Ok(Some(family))
}
