//! Subcommand implementations.

pub mod bench_baseline;
pub mod experiment;
pub mod generate;
pub mod run;
pub mod serve;
pub mod stream;

use crate::args::Args;
use ses_core::error::ServiceError;
use ses_datasets::Dataset;

/// Shared flag handling: dataset + shape + seed.
pub(crate) fn dataset_from_flags(
    args: &Args,
) -> Result<(Dataset, usize, usize, usize, u64), ServiceError> {
    let name = args.str_flag("dataset", "unf");
    let dataset = Dataset::parse(&name)
        .ok_or_else(|| ServiceError::invalid(format!("unknown dataset '{name}'")))?;
    let users = args.num_flag("users", 400usize)?;
    let events = args.num_flag("events", 200usize)?;
    let intervals = args.num_flag("intervals", 30usize)?;
    let seed = args.num_flag("seed", 0x5E5u64)?;
    Ok((dataset, users, events, intervals, seed))
}
