//! Minimal argument parsing: `<subcommand> [positional] [--flag value|--switch]`.
//!
//! Hand-rolled on purpose — the only CLI dependency the workspace would
//! otherwise need is clap, and this binary's surface is small enough that a
//! 100-line parser with good error messages is the lighter choice.
//!
//! Every parse/validation failure is a [`ServiceError::InvalidArgument`],
//! which `main` reports with **exit code 2** (usage error) — distinct from
//! the exit-1 runtime failures — through the same `ServiceError` display
//! path the service API uses.

use ses_core::error::ServiceError;
use std::collections::BTreeMap;

/// Parsed command line.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` and `--switch` (value `"true"`) flags.
    pub flags: BTreeMap<String, String>,
}

/// Switch-style flags that take no value.
const SWITCHES: &[&str] = &["full", "gate", "help", "profile", "quiet", "verify"];

/// Per-subcommand flag whitelists: `(command, valued flags, switches)`.
/// [`Args::validate`] checks parsed flags against the active subcommand so
/// a typo (`--usrs 500`) errors with a suggestion instead of silently
/// running with defaults.
const COMMANDS: &[(&str, &[&str], &[&str])] = &[
    (
        "run",
        &[
            "dataset",
            "users",
            "events",
            "intervals",
            "seed",
            "threads",
            "k",
            "algorithms",
            "constraints",
            "storage",
            "levels",
            "input",
        ],
        &["gate", "profile", "help"],
    ),
    ("experiment", &["users", "seed", "threads", "json", "csv"], &["full", "quiet", "help"]),
    (
        "generate",
        &["dataset", "users", "events", "intervals", "seed", "out", "storage", "levels"],
        &["help"],
    ),
    (
        "stream",
        &[
            "dataset",
            "users",
            "events",
            "intervals",
            "seed",
            "threads",
            "k",
            "ops",
            "churn",
            "user-churn",
            "constraint-churn",
            "constraints",
            "window",
            "redundancy",
            "burst",
            "storage",
            "levels",
            "input",
        ],
        &["verify", "quiet", "help"],
    ),
    (
        "serve",
        &[
            "dataset",
            "users",
            "events",
            "intervals",
            "seed",
            "threads",
            "constraints",
            "storage",
            "levels",
            "input",
            "state-dir",
            "snapshot-ops",
            "max-line-bytes",
            "listen",
            "max-sessions",
            "max-connections",
            "idle-timeout-ms",
        ],
        &["help"],
    ),
    ("recover", &["state-dir", "threads"], &["help"]),
    ("bench-baseline", &["targets", "out", "label", "check", "from"], &["help"]),
    ("help", &[], &["help"]),
    ("", &[], &["help"]),
];

impl Args {
    /// Parses the process arguments (without the binary name).
    ///
    /// # Errors
    /// [`ServiceError::InvalidArgument`] for a valued flag missing its
    /// value.
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Result<Args, ServiceError> {
        let mut out = Args::default();
        let mut iter = argv.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    out.flags.insert(name.to_string(), "true".to_string());
                } else {
                    let val = iter.next().ok_or_else(|| {
                        ServiceError::invalid(format!("flag --{name} expects a value"))
                    })?;
                    out.flags.insert(name.to_string(), val);
                }
            } else if out.command.is_empty() {
                out.command = tok;
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// String flag with a default.
    pub fn str_flag(&self, name: &str, default: &str) -> String {
        self.flags.get(name).cloned().unwrap_or_else(|| default.to_string())
    }

    /// Optional string flag.
    pub fn opt_flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// Numeric flag with a default.
    ///
    /// # Errors
    /// [`ServiceError::InvalidArgument`] for an unparseable value.
    pub fn num_flag<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, ServiceError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ServiceError::invalid(format!("flag --{name}: cannot parse '{v}'"))),
        }
    }

    /// Whether a switch is set.
    pub fn switch(&self, name: &str) -> bool {
        self.flags.get(name).is_some_and(|v| v == "true")
    }

    /// Validates every parsed flag against the active subcommand's
    /// whitelist, suggesting the closest known flag on a miss. Unknown
    /// subcommands are left for the dispatcher's own error.
    ///
    /// # Errors
    /// The first unknown flag (as [`ServiceError::InvalidArgument`]), with
    /// a "did you mean" hint when a known flag is within edit distance 2.
    pub fn validate(&self) -> Result<(), ServiceError> {
        let Some(&(_, valued, switches)) = COMMANDS.iter().find(|(c, _, _)| *c == self.command)
        else {
            return Ok(());
        };
        for name in self.flags.keys() {
            if valued.contains(&name.as_str()) || switches.contains(&name.as_str()) {
                continue;
            }
            let known = valued.iter().chain(switches.iter()).copied();
            let hint = match closest(name, known) {
                Some(s) => format!(" (did you mean --{s}?)"),
                None => String::new(),
            };
            let ctx = if self.command.is_empty() {
                "without a subcommand".to_string()
            } else {
                format!("for '{}'", self.command)
            };
            return Err(ServiceError::invalid(format!("unknown flag --{name} {ctx}{hint}")));
        }
        Ok(())
    }
}

/// The known flag closest to `name`, if within edit distance 2.
fn closest<'a>(name: &str, candidates: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    candidates
        .map(|c| (levenshtein(name, c), c))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| c)
}

/// Plain dynamic-programming edit distance (the flag namespace is tiny).
fn levenshtein(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string)).unwrap()
    }

    #[test]
    fn parses_subcommand_flags_and_positionals() {
        let a = parse("experiment fig5 --users 500 --full --seed 7");
        assert_eq!(a.command, "experiment");
        assert_eq!(a.positional, vec!["fig5"]);
        assert_eq!(a.num_flag("users", 0usize).unwrap(), 500);
        assert!(a.switch("full"));
        assert_eq!(a.num_flag("seed", 0u64).unwrap(), 7);
    }

    #[test]
    fn defaults_apply() {
        let a = parse("run");
        assert_eq!(a.num_flag("k", 42usize).unwrap(), 42);
        assert_eq!(a.str_flag("dataset", "unf"), "unf");
        assert!(!a.switch("full"));
    }

    #[test]
    fn missing_value_errors() {
        let err = Args::parse(["run".into(), "--k".into()]).unwrap_err();
        assert!(err.to_string().contains("--k"));
        // Argument mistakes classify as usage errors (exit code 2).
        assert!(err.is_usage());
    }

    #[test]
    fn bad_number_errors() {
        let a = parse("run --k banana");
        assert!(a.num_flag("k", 0usize).is_err());
    }

    #[test]
    fn typoed_flag_rejected_with_suggestion() {
        let err = parse("run --usrs 500").validate().unwrap_err();
        assert!(err.is_usage());
        let err = err.to_string();
        assert!(err.contains("--usrs"), "{err}");
        assert!(err.contains("did you mean --users?"), "{err}");
    }

    #[test]
    fn typoed_switch_rejected_before_it_swallows_a_token() {
        // `--ful` is not a switch, so parse() eats `fig5` as its value; the
        // whitelist still catches the typo before the command runs.
        let err = parse("experiment --ful fig5").validate().unwrap_err().to_string();
        assert!(err.contains("did you mean --full?"), "{err}");
    }

    #[test]
    fn flags_are_scoped_per_subcommand() {
        // --out belongs to generate, not run.
        let err = parse("run --out x.json").validate().unwrap_err().to_string();
        assert!(err.contains("for 'run'"), "{err}");
        assert!(parse("generate --out x.json").validate().is_ok());
        // --churn belongs to stream only.
        assert!(parse("stream --churn 0.5 --verify").validate().is_ok());
        assert!(parse("experiment fig5 --churn 0.5").validate().is_err());
    }

    #[test]
    fn valid_command_lines_pass_validation() {
        for line in [
            "run --dataset zip --k 50 --users 1000 --threads 4",
            "run --dataset unf --constraints mixed --gate",
            "experiment fig5 --users 400 --full --seed 7 --csv out.csv",
            "generate --dataset meetup --out inst.json",
            "stream --dataset unf --ops 100 --churn 0.3 --user-churn 0.5 --threads 2 --quiet",
            "stream --constraints capacity-tight --constraint-churn 0.2 --verify",
            "stream --window 16 --redundancy 0.6 --burst 24 --ops 200 --verify",
            "serve --dataset unf --users 50 --threads 2",
            "serve --constraints conflict-clique",
            "run --dataset zip --users 100000 --storage compressed --levels 256",
            "stream --storage sparse --ops 50",
            "serve --storage compressed --levels 64",
            "generate --storage dense --out inst.json",
            "run --input inst.json --k 10",
            "stream --input inst.json --ops 50",
            "serve --input inst.json --max-line-bytes 1024",
            "serve --state-dir /tmp/ses --snapshot-ops 64",
            "recover --state-dir /tmp/ses --threads 2",
            "help",
        ] {
            assert!(parse(line).validate().is_ok(), "{line}");
        }
    }

    #[test]
    fn durability_flags_are_scoped() {
        // --state-dir belongs to serve and recover, nothing else.
        assert!(parse("run --state-dir /tmp/x").validate().is_err());
        assert!(parse("stream --snapshot-ops 8").validate().is_err());
        // recover takes only --state-dir/--threads.
        assert!(parse("recover --users 5").validate().is_err());
        let err = parse("serve --state-dr /tmp/x").validate().unwrap_err().to_string();
        assert!(err.contains("did you mean --state-dir?"), "{err}");
    }

    #[test]
    fn unknown_subcommand_left_to_dispatcher() {
        assert!(parse("frobnicate --whatever 1").validate().is_ok());
    }

    #[test]
    fn bare_help_flag_still_valid() {
        // `ses --help` (no subcommand) dispatches to the help screen; the
        // whitelist must not reject it first.
        assert!(parse("--help").validate().is_ok());
        assert!(parse("help --help").validate().is_ok());
    }

    #[test]
    fn distant_typos_get_no_suggestion() {
        let err = parse("run --zzzzzz 1").validate().unwrap_err().to_string();
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn serve_rejects_foreign_flags() {
        assert!(parse("serve --verify").validate().is_err());
        assert!(parse("serve --k 5").validate().is_err());
    }

    #[test]
    fn storage_flag_is_scoped_and_typo_suggested() {
        // experiment and bench-baseline don't build a single instance.
        assert!(parse("experiment fig5 --storage compressed").validate().is_err());
        assert!(parse("bench-baseline --levels 8").validate().is_err());
        let err = parse("run --storge compressed").validate().unwrap_err().to_string();
        assert!(err.contains("did you mean --storage?"), "{err}");
    }
}
