//! Minimal argument parsing: `<subcommand> [positional] [--flag value|--switch]`.
//!
//! Hand-rolled on purpose — the only CLI dependency the workspace would
//! otherwise need is clap, and this binary's surface is small enough that a
//! 100-line parser with good error messages is the lighter choice.

use std::collections::BTreeMap;

/// Parsed command line.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` and `--switch` (value `"true"`) flags.
    pub flags: BTreeMap<String, String>,
}

/// Switch-style flags that take no value.
const SWITCHES: &[&str] = &["full", "help", "quiet"];

impl Args {
    /// Parses the process arguments (without the binary name).
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut out = Args::default();
        let mut iter = argv.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    out.flags.insert(name.to_string(), "true".to_string());
                } else {
                    let val =
                        iter.next().ok_or_else(|| format!("flag --{name} expects a value"))?;
                    out.flags.insert(name.to_string(), val);
                }
            } else if out.command.is_empty() {
                out.command = tok;
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// String flag with a default.
    pub fn str_flag(&self, name: &str, default: &str) -> String {
        self.flags.get(name).cloned().unwrap_or_else(|| default.to_string())
    }

    /// Optional string flag.
    pub fn opt_flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// Numeric flag with a default.
    pub fn num_flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("flag --{name}: cannot parse '{v}'")),
        }
    }

    /// Whether a switch is set.
    pub fn switch(&self, name: &str) -> bool {
        self.flags.get(name).is_some_and(|v| v == "true")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string)).unwrap()
    }

    #[test]
    fn parses_subcommand_flags_and_positionals() {
        let a = parse("experiment fig5 --users 500 --full --seed 7");
        assert_eq!(a.command, "experiment");
        assert_eq!(a.positional, vec!["fig5"]);
        assert_eq!(a.num_flag("users", 0usize).unwrap(), 500);
        assert!(a.switch("full"));
        assert_eq!(a.num_flag("seed", 0u64).unwrap(), 7);
    }

    #[test]
    fn defaults_apply() {
        let a = parse("run");
        assert_eq!(a.num_flag("k", 42usize).unwrap(), 42);
        assert_eq!(a.str_flag("dataset", "unf"), "unf");
        assert!(!a.switch("full"));
    }

    #[test]
    fn missing_value_errors() {
        let err = Args::parse(["run".into(), "--k".into()]).unwrap_err();
        assert!(err.contains("--k"));
    }

    #[test]
    fn bad_number_errors() {
        let a = parse("run --k banana");
        assert!(a.num_flag("k", 0usize).is_err());
    }
}
