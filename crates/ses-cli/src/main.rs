//! `ses` — command-line driver for the SES reproduction.
//!
//! ```text
//! ses run        --dataset <meetup|concerts|unf|zip> --k 20 [--users N] [--events N]
//!                [--intervals N] [--seed S] [--threads N]
//!                [--algorithms ALG,INC,HOR,HOR-I,TOP,RAND]
//! ses experiment <fig5|fig6|fig7|fig8|fig9|fig10a|fig10b|dynamic|constrained|
//!                 windowed|scale|summary|params|all>
//!                [--users N] [--full] [--seed S] [--threads N]
//!                [--json out.json] [--csv out.csv]
//! ses stream     --dataset <...> [--k N] [--ops N] [--churn C] [--user-churn C]
//!                [--constraint-churn C] [--constraints FAMILY] [--users N]
//!                [--events N] [--intervals N] [--seed S] [--threads N]
//!                [--window N [--redundancy R] [--burst B]] [--verify] [--quiet]
//! ses generate   --dataset <...> [--users N] [--events N] [--intervals N] [--seed S]
//!                --out instance.json
//! ses serve      --dataset <...> [--users N] [--events N] [--intervals N] [--seed S]
//!                [--threads N] [--constraints FAMILY] [--input FILE]
//!                [--state-dir DIR [--snapshot-ops N]] [--max-line-bytes N]
//! ses recover    --state-dir DIR [--threads N]
//! ses help
//! ```
//!
//! `--constraints <capacity-tight|conflict-clique|precedence-chain|mixed>`
//! installs a seeded constraint family (venue capacities, conflict
//! cliques, precedence chains) on the instance before scheduling.
//!
//! `--threads 0` (the default) uses every hardware thread. Scheduling
//! results and reports are bit-identical for every thread count; the flag
//! only changes wall-clock time. Flags are validated against the active
//! subcommand — a typo errors out with a suggestion instead of silently
//! running with defaults.

mod args;
mod commands;

use args::Args;
use ses_core::error::ServiceError;
use std::process::ExitCode;

/// Exit codes follow the common CLI convention: `2` for usage errors (bad
/// flags, unknown subcommands/algorithms — the caller's mistake), `1` for
/// runtime failures. [`ServiceError::is_usage`] is the single classifier.
fn exit_code(e: &ServiceError) -> ExitCode {
    if e.is_usage() {
        ExitCode::from(2)
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)).and_then(|a| {
        a.validate()?;
        Ok(a)
    }) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error[{}]: {e}", e.code());
            return exit_code(&e);
        }
    };

    let result = match args.command.as_str() {
        "run" => commands::run::exec(&args),
        "experiment" => commands::experiment::exec(&args),
        "generate" => commands::generate::exec(&args),
        "stream" => commands::stream::exec(&args),
        "serve" => commands::serve::exec(&args),
        "recover" => commands::recover::exec(&args),
        "bench-baseline" => commands::bench_baseline::exec(&args),
        "" | "help" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(ServiceError::invalid(format!("unknown command '{other}' (try `ses help`)"))),
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // The bracketed code is the stable, grep-friendly half of the
            // contract (exit-code tests key on it); the message may evolve.
            eprintln!("error[{}]: {e}", e.code());
            exit_code(&e)
        }
    }
}

const HELP: &str = "\
ses — Social Event Scheduling (EDBT 2019 reproduction)

USAGE:
  ses run        --dataset <meetup|concerts|unf|zip> [--k N] [--users N]
                 [--events N] [--intervals N] [--seed S] [--threads N]
                 [--algorithms ALG,INC,HOR,HOR-I,TOP,RAND] [--gate] [--profile]
                 [--constraints FAMILY] [--storage KIND] [--levels N]
                 [--input instance.json]
  ses experiment <fig5|fig6|fig7|fig8|fig9|fig10a|fig10b|ablation-schemes|
                  ablation-refine|dynamic|constrained|windowed|scale|summary|
                  params|all>
                 [--users N] [--full] [--seed S] [--threads N]
                 [--json PATH] [--csv PATH]
  ses stream     --dataset <...> [--k N] [--ops N] [--churn C] [--user-churn C]
                 [--constraint-churn C] [--constraints FAMILY] [--users N]
                 [--events N] [--intervals N] [--seed S] [--threads N]
                 [--window N [--redundancy R] [--burst B]] [--verify] [--quiet]
                 [--storage KIND] [--levels N] [--input instance.json]
  ses generate   --dataset <...> [--users N] [--events N] [--intervals N]
                 [--seed S] --out instance.json [--storage KIND] [--levels N]
  ses serve      --dataset <...> [--users N] [--events N] [--intervals N]
                 [--seed S] [--threads N] [--constraints FAMILY]
                 [--storage KIND] [--levels N] [--input instance.json]
                 [--state-dir DIR [--snapshot-ops N]] [--max-line-bytes N]
                 [--listen HOST:PORT [--max-sessions N] [--max-connections N]
                  [--idle-timeout-ms MS]]
  ses recover    --state-dir DIR [--threads N]
  ses bench-baseline [--targets micro_scoring,...] [--out BENCH_BASELINE.json]
                 [--label NOTE] [--check FACTOR] [--from RUN.json]
  ses help

`--threads N` sets the worker count (default 0 = all hardware threads):
engine/scheduler threads for `run`/`stream`, sweep-row fan-out for
`experiment`. Results are bit-identical for every N.

`run --gate` turns on the bound-first gate (INC/HOR-I/LAZY): candidates
are seeded with a cheap separable upper bound and only swept when the
bound survives the running threshold. Schedules and utilities are
bit-identical to ungated runs; the `skips` column counts deferred
sweeps. `run --profile` appends a per-phase engine timing breakdown
(setup / score / apply / other) under each row.

`bench-baseline` runs the criterion bench targets (all sixteen by default)
and appends one annotated run — medians, rustc, commit — to the
committed BENCH_BASELINE.json trajectory; with `--check FACTOR` it
instead compares fresh medians against the last recorded run and fails
on a > FACTOR x regression (the CI perf-smoke gate).

`stream` replays a seeded delta-op stream (event/user churn at rate
`--churn`, interest drift otherwise) through the incremental repair
scheduler and prints its work next to a per-op full recompute;
`--verify` additionally checks every repaired schedule against an INC
recompute, bit for bit. `--constraint-churn C` makes a C-slice of the
stream edit the constraint set (conflicts, precedences, capacities).
`--window N` switches to windowed ingestion: a bursty feed (redundant
re-drifts at rate `--redundancy`, bursts of `--burst` arrivals) is
chunked into N-op windows, each coalesced to a minimal batch and
repaired in one flush; the run reports sustained ops/sec against
op-at-a-time ingestion of the same feed, whose end state must match
bit-for-bit.

`--storage <auto|dense|sparse|compressed>` (run/stream/serve/generate)
picks the interest-matrix layout. `auto` (default) keeps each dataset's
native layout below 100k users and switches to the dictionary-encoded
compressed layout at or above it. Scheduling results are bit-identical
across layouts; only memory and build time change. `--levels N`
quantizes interest draws onto an N-step grid (0 = continuous; defaults
to 256 when the compressed layout is selected) so the compression
dictionary stays small. `run --profile` reports the resident bytes.

`--constraints FAMILY` (run/stream/serve) installs a seeded constraint
family before scheduling: capacity-tight (venue slot budgets),
conflict-clique (mutual exclusion), precedence-chain (ordering), or
mixed. Every scheduler admits candidates through the same feasibility
gate, so constrained runs stay bit-identical across thread counts.

`serve` turns the process into a long-lived session: one JSON request
per stdin line (protocol v1: {\"v\":1,\"req\":{...}}), one JSON response
per stdout line. The session keeps warm state across requests —
per-scheduler scratch pools and the incremental repairer's caches — and
answers Schedule / ApplyOps / Repair / Query / Snapshot / Reset.
Responses carry no wall-clock fields, so a seeded request script always
produces a byte-identical response log (see scripts/serve-smoke.jsonl).
Input is guarded: request lines longer than `--max-line-bytes` (default
16 MiB) and JSON nested deeper than 128 levels are answered with
protocol-coded Error responses instead of being buffered or parsed.

`serve --state-dir DIR` makes the session durable: every mutating
request is fsynced to a write-ahead log before it is applied, the log
folds into a checksummed snapshot every `--snapshot-ops` records
(default 1024, also on the Persist request), and startup auto-recovers
the newest valid state — replaying the log tail and truncating a torn
final record. `ses recover --state-dir DIR` prints the same recovery as
a read-only dry run: generations on disk, the chosen snapshot, replay
count, torn-tail/fallback status, and the recovered session summary.

`serve --listen HOST:PORT` turns the session service into a TCP
multi-session server: the same JSON-lines protocol per connection, plus
an optional \"session\" envelope key naming the target session (absent =
the `default` session, so stdio scripts replay byte-identically). Many
named sessions live in one process (OpenSession / CloseSession /
ListSessions manage them, `--max-sessions` caps them); per session,
mutating requests serialize while Query/Snapshot answer concurrently
from an immutable published view — reads never block on writes and are
bit-identical to a serialized execution. With `--state-dir DIR` each
session persists under DIR/<name>, every one recovers at boot, and
`ses recover` prints one per-session report for the directory.
SIGTERM/SIGINT shut down gracefully: drain in-flight requests, fsync
every write-ahead log, exit 0. Connection guards: `--max-connections`
(excess connects are answered with one protocol Error line),
`--idle-timeout-ms` (quiet connections are closed), and the same
`--max-line-bytes` cap per connection.

`--input instance.json` (run/stream/serve) schedules the instance file
`ses generate` wrote instead of building one from the dataset flags. A
file that fails to parse or validate is typed corruption: exit 1 with
`error[corrupt]` on stderr.

Exit codes: 0 success, 1 runtime failure, 2 usage error (bad flag or
unknown subcommand/algorithm).

EXAMPLES:
  ses run --dataset zip --k 50 --users 1000 --threads 4
  ses experiment fig5 --users 400
  ses experiment all --users 200 --csv results.csv --threads 8
  ses stream --dataset unf --users 200 --ops 100 --churn 0.5 --verify
  ses stream --dataset unf --ops 200 --window 32 --redundancy 0.6 --verify
  ses run --dataset zip --users 100000 --events 60 --intervals 12 \\
          --storage compressed --levels 256 --profile
";
