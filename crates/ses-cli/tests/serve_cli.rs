//! End-to-end tests of the `ses` binary surface added by the service PR:
//! the `serve` golden transcript (byte-compared) and the exit-code
//! contract (0 success / 1 runtime failure / 2 usage error).

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn ses() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ses"))
}

/// Pipes a request script through `ses serve` (the shared shape flags plus
/// any `extra` args) and byte-compares the response log against a committed
/// golden transcript. Responses carry no wall-clock fields and are
/// bit-identical across thread counts, so the comparison holds under any
/// `SES_THREADS` (CI runs it at 1 and 4).
fn assert_serve_golden(extra: &[&str], script_path: &str, golden_path: &str) {
    let root = repo_root();
    let script = std::fs::read_to_string(root.join(script_path)).unwrap();
    let golden = std::fs::read_to_string(root.join(golden_path)).unwrap();

    let mut child = ses()
        .args([
            "serve",
            "--dataset",
            "unf",
            "--users",
            "40",
            "--events",
            "12",
            "--intervals",
            "6",
            "--seed",
            "1509",
        ])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ses serve");
    child.stdin.take().unwrap().write_all(script.as_bytes()).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve exited {:?}", out.status);

    let got = String::from_utf8(out.stdout).expect("responses are UTF-8");
    assert_eq!(
        got, golden,
        "serve responses diverged from {golden_path} — if the protocol changed \
         intentionally, regenerate the golden with the command at the top of the script"
    );
}

#[test]
fn serve_round_trips_the_golden_transcript() {
    assert_serve_golden(&[], "scripts/serve-smoke.jsonl", "tests/golden/serve_smoke.jsonl");
}

/// The constrained session golden: `--constraints mixed` installs a seeded
/// preset, and the script exercises constrained scheduling, an inline
/// constraints block, warm churn through the repairer, four distinct
/// constraint-violation `Error` responses, and empty-set relaxation.
#[test]
fn serve_round_trips_the_constrained_golden_transcript() {
    assert_serve_golden(
        &["--constraints", "mixed"],
        "scripts/serve-constrained-smoke.jsonl",
        "tests/golden/serve_constrained.jsonl",
    );
}

/// A second session over the same script must produce the same bytes —
/// the transcript is deterministic, not merely pinned.
#[test]
fn serve_is_deterministic_across_sessions() {
    let root = repo_root();
    let script = std::fs::read_to_string(root.join("scripts/serve-smoke.jsonl")).unwrap();
    let run = || {
        let mut child = ses()
            .args([
                "serve",
                "--dataset",
                "unf",
                "--users",
                "40",
                "--events",
                "12",
                "--intervals",
                "6",
                "--seed",
                "1509",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        child.stdin.take().unwrap().write_all(script.as_bytes()).unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success());
        out.stdout
    };
    assert_eq!(run(), run());
}

/// A broken stdin read mid-session (one invalid-UTF-8 byte) must not
/// abort with a bare exit 1: every line before the bad byte is answered,
/// the failure itself comes back as a final `io`-coded `Error` response,
/// and the session ends as cleanly as EOF.
#[test]
fn invalid_utf8_on_stdin_ends_the_session_cleanly() {
    let mut child = ses()
        .args([
            "serve",
            "--dataset",
            "unf",
            "--users",
            "20",
            "--events",
            "6",
            "--intervals",
            "3",
            "--seed",
            "7",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ses serve");
    let mut stdin = child.stdin.take().unwrap();
    stdin.write_all(b"{\"v\":1,\"req\":\"Snapshot\"}\n").unwrap();
    stdin.write_all(b"\xFF\n").unwrap();
    // Anything after the bad byte is past the end of the session.
    stdin.write_all(b"{\"v\":1,\"req\":\"Snapshot\"}\n").unwrap();
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve exited {:?} instead of winding down", out.status);

    let got = String::from_utf8(out.stdout).expect("responses are UTF-8");
    let lines: Vec<&str> = got.lines().collect();
    assert_eq!(lines.len(), 2, "one answer for the good line, one for the bad read:\n{got}");
    assert!(lines[0].contains("\"State\""), "{}", lines[0]);
    // Don't pin the OS error text — just the protocol shape and the code.
    assert!(lines[1].starts_with("{\"v\":1,\"resp\":{\"Error\":{\"code\":\"io\""), "{}", lines[1]);
}

fn exit_code(args: &[&str]) -> i32 {
    ses()
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap()
        .code()
        .expect("no signal")
}

/// Usage errors — the caller's mistake — exit 2, distinguishable from the
/// exit-1 runtime failures.
#[test]
fn usage_errors_exit_2() {
    // Typoed flag (caught by the per-subcommand whitelist).
    assert_eq!(exit_code(&["run", "--usrs", "5"]), 2);
    // Unknown subcommand.
    assert_eq!(exit_code(&["frobnicate"]), 2);
    // Unparseable flag value.
    assert_eq!(exit_code(&["run", "--k", "banana"]), 2);
    // Unknown dataset / algorithm resolve before any work runs.
    assert_eq!(exit_code(&["run", "--dataset", "nope"]), 2);
    assert_eq!(
        exit_code(&[
            "run",
            "--dataset",
            "unf",
            "--users",
            "10",
            "--events",
            "4",
            "--intervals",
            "2",
            "--algorithms",
            "XYZ",
        ]),
        2
    );
    // Missing required argument.
    assert_eq!(exit_code(&["generate", "--dataset", "unf"]), 2);
}

/// An unknown `--constraints` family is a usage error on every subcommand
/// carrying the flag, caught before any scheduling work runs.
#[test]
fn unknown_constraint_family_exits_2() {
    let shape = ["--dataset", "unf", "--users", "10", "--events", "4", "--intervals", "2"];
    for sub in ["run", "stream", "serve"] {
        let mut args = vec![sub];
        args.extend_from_slice(&shape);
        args.extend_from_slice(&["--constraints", "nope"]);
        assert_eq!(exit_code(&args), 2, "{sub} accepted a bogus family");
    }
}

/// Runtime failures keep exiting 1.
#[test]
fn runtime_failures_exit_1() {
    assert_eq!(
        exit_code(&[
            "generate",
            "--dataset",
            "unf",
            "--users",
            "5",
            "--events",
            "3",
            "--intervals",
            "2",
            "--out",
            "/nonexistent-dir/x.json",
        ]),
        1
    );
}

/// The happy paths still exit 0 (run is also a service client now).
#[test]
fn success_exits_0() {
    assert_eq!(
        exit_code(&[
            "run",
            "--dataset",
            "unf",
            "--users",
            "20",
            "--events",
            "6",
            "--intervals",
            "3",
            "--k",
            "3",
            "--threads",
            "1",
        ]),
        0
    );
    assert_eq!(exit_code(&["help"]), 0);
}
