//! End-to-end tests of `ses serve --listen`: the TCP transport, session
//! multiplexing, graceful SIGTERM shutdown (drain + WAL fsync + exit 0),
//! the per-connection guards, and SIGKILL + recovery of durable sessions
//! — all at the binary level, over real sockets.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn ses() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ses"))
}

/// The shape every golden transcript was recorded against.
const SHAPE: [&str; 10] =
    ["serve", "--dataset", "unf", "--users", "40", "--events", "12", "--intervals", "6", "--seed"];

/// A running `--listen` server plus the machinery to talk to it and shut
/// it down. Stderr is drained on a thread (so the child never blocks on a
/// full pipe) and handed back at shutdown for assertions.
struct Server {
    child: Child,
    addr: String,
    stderr: Option<std::thread::JoinHandle<String>>,
}

impl Server {
    /// Boots `ses serve --listen 127.0.0.1:0 <extra>` and parses the
    /// bound address off the stderr banner.
    fn start(extra: &[&str]) -> Server {
        let mut child = ses()
            .args(SHAPE)
            .args(["1509", "--listen", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn ses serve --listen");
        let mut stderr = BufReader::new(child.stderr.take().unwrap());
        let mut addr = None;
        let mut line = String::new();
        let mut banner = String::new();
        while stderr.read_line(&mut line).unwrap() > 0 {
            banner.push_str(&line);
            if let Some(rest) = line.split("listening on ").nth(1) {
                addr = Some(rest.split_whitespace().next().unwrap().to_string());
                break;
            }
            line.clear();
        }
        let drain = std::thread::spawn(move || {
            let mut rest = String::new();
            let _ = stderr.read_to_string(&mut rest);
            banner + &rest
        });
        Server { child, addr: addr.expect("server printed its bound address"), stderr: Some(drain) }
    }

    fn connect(&self) -> TcpStream {
        TcpStream::connect(&self.addr).expect("connect")
    }

    /// SIGTERM, then wait: returns the exit status and the full stderr.
    fn sigterm_and_wait(mut self) -> (std::process::ExitStatus, String) {
        let ok = Command::new("kill")
            .arg(self.child.id().to_string())
            .status()
            .expect("run kill")
            .success();
        assert!(ok, "kill(1) failed");
        let status = self.child.wait().expect("wait");
        let stderr = self.stderr.take().unwrap().join().expect("stderr drain");
        (status, stderr)
    }

    /// SIGKILL — no destructors, no drain; the durable recovery path has
    /// to cope. Returns nothing: the state dir is the surviving artifact.
    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL");
        let _ = self.child.wait();
        let _ = self.stderr.take().unwrap().join();
    }
}

/// Writes a full script, half-closes, and reads every response line.
fn drive(server: &Server, script: &str) -> String {
    let mut stream = server.connect();
    stream.write_all(script.as_bytes()).expect("send script");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read responses");
    out
}

/// One request/response exchange on an open connection.
fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    resp
}

/// Addresses a v1 request line to a named session by injecting the
/// envelope key (decode ignores key order).
fn in_session(line: &str, session: &str) -> String {
    line.replacen("{\"v\":1,", &format!("{{\"v\":1,\"session\":\"{session}\","), 1)
}

/// The committed stdio golden must replay byte-identically over TCP: a
/// session-less connection addresses the `default` session and responses
/// never carry a session field. Shutdown afterwards is graceful: SIGTERM
/// → drain → exit 0.
#[test]
fn tcp_default_session_replays_the_stdio_golden_byte_identically() {
    let root = repo_root();
    let script = std::fs::read_to_string(root.join("scripts/serve-smoke.jsonl")).unwrap();
    let golden = std::fs::read_to_string(root.join("tests/golden/serve_smoke.jsonl")).unwrap();

    let server = Server::start(&[]);
    let got = drive(&server, &script);
    assert_eq!(got, golden, "TCP transcript diverged from the stdio golden");

    let (status, stderr) = server.sigterm_and_wait();
    assert_eq!(status.code(), Some(0), "graceful shutdown must exit 0");
    assert!(stderr.contains("shutdown requested"), "{stderr}");
}

/// Three concurrent clients, each in its own session, each replaying the
/// smoke script: every per-session transcript must be byte-identical to
/// the committed golden regardless of cross-session interleaving.
#[test]
fn concurrent_sessions_each_replay_the_golden_byte_identically() {
    let root = repo_root();
    let script = std::fs::read_to_string(root.join("scripts/serve-smoke.jsonl")).unwrap();
    let golden = std::fs::read_to_string(root.join("tests/golden/serve_smoke.jsonl")).unwrap();

    let server = Server::start(&[]);
    let clients: Vec<_> = (0..3)
        .map(|i| {
            let name = format!("client-{i}");
            let mut lines =
                vec![format!("{{\"v\":1,\"req\":{{\"OpenSession\":{{\"session\":\"{name}\"}}}}}}")];
            for line in script.lines() {
                let t = line.trim();
                if t.is_empty() || t.starts_with('#') {
                    continue;
                }
                lines.push(in_session(t, &name));
            }
            let script = lines.join("\n") + "\n";
            let addr = server.addr.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(&addr).unwrap();
                stream.write_all(script.as_bytes()).unwrap();
                stream.shutdown(Shutdown::Write).unwrap();
                let mut out = String::new();
                stream.read_to_string(&mut out).unwrap();
                (name, out)
            })
        })
        .collect();
    for c in clients {
        let (name, got) = c.join().expect("client thread");
        let (first, rest) = got.split_once('\n').expect("at least the open response");
        assert!(first.contains("SessionOpened"), "{name}: {first}");
        assert!(first.contains(&name), "{name}: {first}");
        assert_eq!(rest, golden, "{name}: per-session transcript diverged from the golden");
    }
    let (status, _) = server.sigterm_and_wait();
    assert_eq!(status.code(), Some(0));
}

/// SIGTERM with a connection mid-session: the in-flight request is
/// answered (drained), the connection closes, and the server exits 0.
#[test]
fn sigterm_drains_open_connections_and_exits_0() {
    let server = Server::start(&[]);
    let mut stream = server.connect();
    let resp = roundtrip(&mut stream, "{\"v\":1,\"req\":\"Snapshot\"}");
    assert!(resp.contains("\"State\""), "{resp}");

    let (status, stderr) = server.sigterm_and_wait();
    assert_eq!(status.code(), Some(0), "stderr:\n{stderr}");
    assert!(stderr.contains("draining"), "{stderr}");
    assert!(stderr.contains("WALs synced"), "{stderr}");
    // The server closed our connection as part of the drain.
    let mut rest = String::new();
    stream.read_to_string(&mut rest).expect("clean close");
    assert!(rest.is_empty(), "unexpected bytes after shutdown: {rest}");
}

/// The `--max-connections` cap answers excess connects with exactly one
/// protocol `Error` line, then closes; existing connections are
/// unaffected.
#[test]
fn connection_cap_rejects_with_one_protocol_error_line() {
    let server = Server::start(&["--max-connections", "1"]);
    let mut first = server.connect();
    // Prove the first connection is registered before the second tries.
    assert!(roundtrip(&mut first, "{\"v\":1,\"req\":\"Snapshot\"}").contains("\"State\""));

    let mut second = server.connect();
    let mut rejection = String::new();
    second.read_to_string(&mut rejection).expect("read rejection");
    let lines: Vec<&str> = rejection.lines().collect();
    assert_eq!(lines.len(), 1, "exactly one line: {rejection:?}");
    assert!(lines[0].contains("\"code\":\"protocol\""), "{rejection}");
    assert!(lines[0].contains("--max-connections"), "{rejection}");

    // The surviving connection still answers.
    assert!(roundtrip(&mut first, "{\"v\":1,\"req\":\"Snapshot\"}").contains("\"State\""));
    drop(first);
    let (status, _) = server.sigterm_and_wait();
    assert_eq!(status.code(), Some(0));
}

/// A connection that sends nothing for longer than `--idle-timeout-ms`
/// is told why and closed.
#[test]
fn idle_connections_time_out() {
    let server = Server::start(&["--idle-timeout-ms", "400"]);
    let stream = server.connect();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("idle notice");
    assert!(line.contains("idle timeout"), "{line}");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("closed");
    assert!(rest.is_empty());
    let (status, _) = server.sigterm_and_wait();
    assert_eq!(status.code(), Some(0));
}

/// The per-connection `--max-line-bytes` guard: an over-cap line answers
/// an in-protocol error and the connection keeps serving.
#[test]
fn oversized_lines_answer_in_protocol_and_the_connection_survives() {
    let server = Server::start(&["--max-line-bytes", "64"]);
    let mut stream = server.connect();
    let long = format!("{{\"v\":1,\"req\":{{\"pad\":\"{}\"}}}}", "x".repeat(256));
    let resp = roundtrip(&mut stream, &long);
    assert!(resp.contains("--max-line-bytes"), "{resp}");
    let resp = roundtrip(&mut stream, "{\"v\":1,\"req\":\"Snapshot\"}");
    assert!(resp.contains("\"State\""), "{resp}");
    let (status, _) = server.sigterm_and_wait();
    assert_eq!(status.code(), Some(0));
}

/// Unknown sessions answer the typed `unknown-session` error; opening,
/// listing, and closing route over the wire.
#[test]
fn session_control_over_the_wire() {
    let server = Server::start(&[]);
    let mut stream = server.connect();
    let resp = roundtrip(&mut stream, &in_session("{\"v\":1,\"req\":\"Snapshot\"}", "ghost"));
    assert!(resp.contains("\"code\":\"unknown-session\""), "{resp}");
    let resp =
        roundtrip(&mut stream, "{\"v\":1,\"req\":{\"OpenSession\":{\"session\":\"ghost\"}}}");
    assert!(resp.contains("SessionOpened"), "{resp}");
    let resp = roundtrip(&mut stream, &in_session("{\"v\":1,\"req\":\"Snapshot\"}", "ghost"));
    assert!(resp.contains("\"State\""), "{resp}");
    let resp = roundtrip(&mut stream, "{\"v\":1,\"req\":\"ListSessions\"}");
    assert!(resp.contains("\"default\"") && resp.contains("\"ghost\""), "{resp}");
    let resp =
        roundtrip(&mut stream, "{\"v\":1,\"req\":{\"CloseSession\":{\"session\":\"ghost\"}}}");
    assert!(resp.contains("SessionClosed"), "{resp}");
    let resp = roundtrip(&mut stream, &in_session("{\"v\":1,\"req\":\"Snapshot\"}", "ghost"));
    assert!(resp.contains("\"code\":\"unknown-session\""), "{resp}");
    let (status, _) = server.sigterm_and_wait();
    assert_eq!(status.code(), Some(0));
}

/// SIGKILL a durable multi-session server mid-traffic, reboot over the
/// same state directory: every named session recovers at boot (with
/// `[session:NAME]`-prefixed diagnostics) and answers exactly what it
/// answered before the kill.
#[test]
fn sigkill_then_reboot_recovers_every_durable_session() {
    let dir = std::env::temp_dir().join(format!("ses-net-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap().to_string();

    let server = Server::start(&["--state-dir", &dir_s]);
    let mut stream = server.connect();
    assert!(roundtrip(&mut stream, "{\"v\":1,\"req\":{\"OpenSession\":{\"session\":\"crash\"}}}")
        .contains("\"durable\":true"));
    let sched =
        in_session("{\"v\":1,\"req\":{\"Schedule\":{\"algorithm\":\"INC\",\"k\":4}}}", "crash");
    assert!(roundtrip(&mut stream, &sched).contains("Scheduled"));
    let snap_before =
        roundtrip(&mut stream, &in_session("{\"v\":1,\"req\":\"Snapshot\"}", "crash"));
    server.sigkill();

    let server = Server::start(&["--state-dir", &dir_s]);
    let mut stream = server.connect();
    let snap_after = roundtrip(&mut stream, &in_session("{\"v\":1,\"req\":\"Snapshot\"}", "crash"));
    assert_eq!(snap_after, snap_before, "recovered session diverged from its pre-kill answers");
    let list = roundtrip(&mut stream, "{\"v\":1,\"req\":\"ListSessions\"}");
    assert!(list.contains("\"crash\"") && list.contains("\"default\""), "{list}");
    let (status, stderr) = server.sigterm_and_wait();
    assert_eq!(status.code(), Some(0));
    assert!(stderr.contains("[session:crash]"), "{stderr}");
    assert!(stderr.contains("recovered generation"), "{stderr}");

    // `ses recover` understands the multi-session layout: one read-only
    // report per session subdirectory, in sorted name order.
    let out = ses()
        .args(["recover", "--state-dir", &dir_s])
        .output()
        .expect("run recover on a multi-session dir");
    assert!(out.status.success(), "recover exit: {:?}", out.status);
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("multi-session (2)"), "{report}");
    let crash_at = report.find("[session:crash]").expect("crash report");
    let default_at = report.find("[session:default]").expect("default report");
    assert!(crash_at < default_at, "sessions must report in sorted order:\n{report}");
    assert!(report.contains("schedule:         4 assignment(s)"), "{report}");
    let _ = std::fs::remove_dir_all(&dir);
}
