//! End-to-end tests of the durability surface: kill-and-recover over
//! `serve --state-dir` (SIGKILL between answered requests, restart,
//! byte-compare the stitched transcript), the `--max-line-bytes` input
//! guard, `ses recover` inspection, and the exit-code contract for
//! corrupt/truncated dataset and snapshot files across `run`/`stream`/
//! `serve`/`recover`.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use ses_algorithms::service::wire;
use ses_algorithms::Request;
use ses_core::delta::DeltaOp;
use ses_core::EventId;

fn ses() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ses"))
}

/// A fresh scratch directory under the target-adjacent temp root.
fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ses-durable-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The shared instance shape for every durable session in this file.
const SHAPE: &[&str] =
    &["--dataset", "unf", "--users", "30", "--events", "10", "--intervals", "5", "--seed", "99"];

/// Spawns `ses serve` with the shared shape plus `extra` flags.
fn spawn_serve(extra: &[&str]) -> Child {
    ses()
        .arg("serve")
        .args(SHAPE)
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ses serve")
}

/// The request transcript the kill-and-recover tests replay: a mix of
/// mutating requests (logged to the write-ahead log) and queries, with a
/// failed-validation batch in the middle — its rejection must replay
/// deterministically too.
fn transcript() -> Vec<String> {
    let shift = |event: usize, user: usize, interest: f64| DeltaOp::ShiftInterest {
        event: EventId::new(event),
        user,
        interest,
    };
    let reqs = vec![
        Request::Schedule {
            algorithm: "INC".into(),
            k: 3,
            threads: None,
            gate: false,
            profile: false,
            constraints: None,
        },
        Request::Query { query: ses_algorithms::service::Query::Event { event: 0 } },
        Request::ApplyOps { ops: vec![shift(1, 0, 0.25), shift(2, 3, 0.75)], window: None },
        Request::Snapshot,
        Request::Repair { k: 3, threads: None, gate: false },
        // Rejected batch: dangling event. Still logged; replay must
        // reproduce the same Error response.
        Request::ApplyOps {
            ops: vec![DeltaOp::RemoveEvent { event: EventId::new(9999) }],
            window: None,
        },
        Request::ApplyOps { ops: vec![shift(0, 5, 0.5)], window: None },
        Request::Repair { k: 3, threads: None, gate: false },
        Request::Snapshot,
    ];
    reqs.iter().map(wire::encode_request).collect()
}

/// Runs the whole transcript against one uninterrupted durable session
/// and returns the response lines.
fn golden_run(state_dir: &Path, extra: &[&str]) -> Vec<String> {
    let mut child = spawn_serve(&[&["--state-dir", state_dir.to_str().unwrap()], extra].concat());
    let mut stdin = child.stdin.take().unwrap();
    for line in transcript() {
        writeln!(stdin, "{line}").unwrap();
    }
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "golden serve exited {:?}", out.status);
    String::from_utf8(out.stdout).unwrap().lines().map(str::to_string).collect()
}

/// Drives `count` requests one at a time (awaiting each response before
/// sending the next), then SIGKILLs the server mid-session. Returns the
/// responses received before the kill.
fn run_until_kill(state_dir: &Path, lines: &[String], count: usize) -> Vec<String> {
    let mut child = spawn_serve(&["--state-dir", state_dir.to_str().unwrap()]);
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut got = Vec::new();
    for line in &lines[..count] {
        writeln!(stdin, "{line}").unwrap();
        let mut resp = String::new();
        stdout.read_line(&mut resp).unwrap();
        got.push(resp.trim_end().to_string());
    }
    // SIGKILL: no destructors, no graceful shutdown — the recovery path
    // gets exactly what fsync left on disk.
    child.kill().unwrap();
    child.wait().unwrap();
    got
}

/// The tentpole proof at the binary level: kill the server after every
/// possible answered-request boundary, restart on the same state
/// directory, and the stitched transcript must be byte-identical to an
/// uninterrupted session's.
#[test]
fn kill_and_recover_is_byte_identical_at_every_boundary() {
    let lines = transcript();
    let golden = golden_run(&tmpdir("golden"), &[]);
    assert_eq!(golden.len(), lines.len(), "golden answers every request");

    for cut in 1..lines.len() {
        let dir = tmpdir(&format!("kill-{cut}"));
        let mut got = run_until_kill(&dir, &lines, cut);

        // Restart on the same directory; the surviving requests replay
        // from snapshot + log, and the remainder of the script runs live.
        let mut child = spawn_serve(&["--state-dir", dir.to_str().unwrap()]);
        let mut stdin = child.stdin.take().unwrap();
        for line in &lines[cut..] {
            writeln!(stdin, "{line}").unwrap();
        }
        drop(stdin);
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success(), "recovered serve exited {:?}", out.status);
        got.extend(String::from_utf8(out.stdout).unwrap().lines().map(str::to_string));

        assert_eq!(got, golden, "kill after request {cut}: stitched transcript diverged");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Aggressive compaction (`--snapshot-ops 2`) must not change a single
/// response byte — folding the log into snapshots is invisible on the
/// wire.
#[test]
fn compaction_cadence_does_not_change_response_bytes() {
    let golden = golden_run(&tmpdir("cadence-flat"), &[]);
    let compacted = golden_run(&tmpdir("cadence-2"), &["--snapshot-ops", "2"]);
    assert_eq!(golden, compacted);
}

/// Satellite guard: a request line longer than `--max-line-bytes` is
/// answered with a protocol-coded `Error` (not buffered, not fatal), and
/// the session keeps serving.
#[test]
fn oversized_line_answers_protocol_error_and_session_survives() {
    let mut child = spawn_serve(&["--max-line-bytes", "128"]);
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());

    // An over-cap line: valid JSON so only the length guard can reject it.
    let huge = format!("{{\"v\":1,\"req\":{{\"Nope\":\"{}\"}}}}", "x".repeat(4096));
    assert!(huge.len() > 128);
    writeln!(stdin, "{huge}").unwrap();
    let mut resp = String::new();
    stdout.read_line(&mut resp).unwrap();
    assert!(resp.starts_with("{\"v\":1,\"resp\":{\"Error\":{\"code\":\"protocol\""), "{resp}");
    assert!(resp.contains("max-line-bytes"), "{resp}");

    // The session is still alive and answers normally.
    writeln!(stdin, "{}", wire::encode_request(&Request::Snapshot)).unwrap();
    resp.clear();
    stdout.read_line(&mut resp).unwrap();
    assert!(resp.contains("\"State\""), "{resp}");

    drop(stdin);
    assert!(child.wait().unwrap().success());
}

/// Nesting deeper than the wire cap is rejected in-protocol too (flat
/// pre-scan, no recursive parse).
#[test]
fn deep_nesting_answers_protocol_error() {
    let mut child = spawn_serve(&[]);
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    writeln!(stdin, "{{\"v\":1,\"req\":{}{}", "[".repeat(500), "]".repeat(500)).unwrap();
    let mut resp = String::new();
    stdout.read_line(&mut resp).unwrap();
    assert!(
        resp.starts_with("{\"v\":1,\"resp\":{\"Error\":{\"code\":\"protocol\"")
            && resp.contains("nesting"),
        "{resp}"
    );
    drop(stdin);
    assert!(child.wait().unwrap().success());
}

/// Captured run of the binary: (exit code, stderr).
fn run_capture(args: &[&str]) -> (i32, String) {
    let out = ses().args(args).stdin(Stdio::null()).stdout(Stdio::null()).output().unwrap();
    (out.status.code().expect("no signal"), String::from_utf8_lossy(&out.stderr).into_owned())
}

/// `ses recover` prints a read-only report of what recovery would do.
#[test]
fn recover_reports_without_mutating() {
    let dir = tmpdir("inspect");
    let _ = golden_run(&dir, &["--snapshot-ops", "3"]);
    let before: Vec<PathBuf> =
        std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();

    let out = ses()
        .args(["recover", "--state-dir", dir.to_str().unwrap()])
        .stdin(Stdio::null())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("recovers from:"), "{report}");
    assert!(report.contains("session state:"), "{report}");
    assert!(report.contains("schedule:"), "{report}");

    // Read-only: the directory is untouched.
    let after: Vec<PathBuf> = std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
    let (mut b, mut a) = (before, after);
    b.sort();
    a.sort();
    assert_eq!(b, a);
    std::fs::remove_dir_all(&dir).ok();
}

/// Corrupt on-disk state is a loud typed failure, never a silent fresh
/// start: exit 1 with the stable `corrupt` code on stderr, for both
/// `serve --state-dir` and `recover`.
#[test]
fn corrupt_snapshot_exits_1_with_corrupt_code() {
    let dir = tmpdir("corrupt-snap");
    let _ = golden_run(&dir, &[]);

    // Bit-flip the middle of the only snapshot: the checksum must catch it.
    let snap = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "ses"))
        .expect("snapshot file exists");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap, &bytes).unwrap();

    let (code, stderr) = run_capture(&["recover", "--state-dir", dir.to_str().unwrap()]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("error[corrupt]"), "{stderr}");

    let mut serve_args = vec!["serve"];
    serve_args.extend_from_slice(SHAPE);
    serve_args.extend_from_slice(&["--state-dir", dir.to_str().unwrap()]);
    let (code, stderr) = run_capture(&serve_args);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("error[corrupt]"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A truncated dataset/instance file hits the same contract on every
/// subcommand that takes `--input`: exit 1, `error[corrupt]` on stderr.
/// A missing file is I/O, not corruption. Usage mistakes stay exit 2.
#[test]
fn corrupt_input_file_exit_codes() {
    let dir = tmpdir("inputs");

    // A valid instance, then a truncated copy of it.
    let good = dir.join("good.json");
    let mut gen_args = vec!["generate"];
    gen_args.extend_from_slice(SHAPE);
    gen_args.extend_from_slice(&["--out", good.to_str().unwrap()]);
    let (code, stderr) = run_capture(&gen_args);
    assert_eq!(code, 0, "{stderr}");
    let full = std::fs::read(&good).unwrap();
    let truncated = dir.join("truncated.json");
    std::fs::write(&truncated, &full[..full.len() / 2]).unwrap();
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, b"{\"events\": \"not an instance\"}").unwrap();

    for sub in ["run", "stream", "serve"] {
        for bad in [&truncated, &garbage] {
            let (code, stderr) = run_capture(&[sub, "--input", bad.to_str().unwrap()]);
            assert_eq!(code, 1, "{sub} on {bad:?}: {stderr}");
            assert!(stderr.contains("error[corrupt]"), "{sub} on {bad:?}: {stderr}");
        }
        // Missing file: I/O failure, distinct code, same exit 1.
        let (code, stderr) = run_capture(&[sub, "--input", "/nonexistent/inst.json"]);
        assert_eq!(code, 1, "{sub}: {stderr}");
        assert!(stderr.contains("error[io]"), "{sub}: {stderr}");
    }

    // The valid file round-trips: generate → run --input exits 0.
    let (code, stderr) =
        run_capture(&["run", "--input", good.to_str().unwrap(), "--k", "3", "--threads", "1"]);
    assert_eq!(code, 0, "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Usage mistakes around the new flags are exit 2 (the caller's error),
/// caught before any state is touched.
#[test]
fn durable_usage_errors_exit_2() {
    // recover without --state-dir.
    let (code, stderr) = run_capture(&["recover"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("error[invalid-argument]"), "{stderr}");
    // --snapshot-ops without --state-dir.
    let mut args = vec!["serve"];
    args.extend_from_slice(SHAPE);
    args.extend_from_slice(&["--snapshot-ops", "8"]);
    let (code, _) = run_capture(&args);
    assert_eq!(code, 2);
    // --max-line-bytes 0 can never answer anything.
    let mut args = vec!["serve"];
    args.extend_from_slice(SHAPE);
    args.extend_from_slice(&["--max-line-bytes", "0"]);
    let (code, _) = run_capture(&args);
    assert_eq!(code, 2);
    // An empty state directory that has a write-ahead log but no snapshot
    // is structural corruption, not a fresh start.
    let dir = tmpdir("wal-no-snap");
    std::fs::write(dir.join("wal-00000000.log"), b"SESWAL1.").unwrap();
    let (code, stderr) = run_capture(&["recover", "--state-dir", dir.to_str().unwrap()]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("error[corrupt]"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `Persist` and `Restore` work over the wire against a durable session
/// (and keep failing cleanly on a plain one).
#[test]
fn persist_and_restore_over_the_wire() {
    let dir = tmpdir("persist");
    let mut child = spawn_serve(&["--state-dir", dir.to_str().unwrap()]);
    let mut stdin = child.stdin.take().unwrap();
    for line in [
        r#"{"v":1,"req":{"Schedule":{"algorithm":"INC","k":2}}}"#,
        r#"{"v":1,"req":"Persist"}"#,
        r#"{"v":1,"req":"Restore"}"#,
        r#"{"v":1,"req":"Snapshot"}"#,
    ] {
        writeln!(stdin, "{line}").unwrap();
    }
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let got = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = got.lines().collect();
    assert_eq!(lines.len(), 4, "{got}");
    assert!(lines[1].contains("\"Persisted\""), "{}", lines[1]);
    assert!(lines[2].contains("\"Restored\""), "{}", lines[2]);
    assert!(lines[3].contains("\"State\""), "{}", lines[3]);

    // Plain session: typed rejection, session keeps serving.
    let mut child = spawn_serve(&[]);
    let mut stdin = child.stdin.take().unwrap();
    stdin.write_all(b"{\"v\":1,\"req\":\"Persist\"}\n").unwrap();
    stdin.write_all(b"{\"v\":1,\"req\":\"Snapshot\"}\n").unwrap();
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let got = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = got.lines().collect();
    assert_eq!(lines.len(), 2, "{got}");
    assert!(
        lines[0].contains("\"code\":\"invalid-argument\"") && lines[0].contains("--state-dir"),
        "{}",
        lines[0]
    );
    assert!(lines[1].contains("\"State\""), "{}", lines[1]);
    std::fs::remove_dir_all(&dir).ok();
}

/// The recovery banner goes to stderr, never stdout — stdout stays a pure
/// response stream even across a recovery.
#[test]
fn recovery_banner_stays_on_stderr() {
    let dir = tmpdir("banner");
    let _ = golden_run(&dir, &[]);

    let mut child = ses()
        .arg("serve")
        .args(SHAPE)
        .args(["--state-dir", dir.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    writeln!(stdin, "{}", wire::encode_request(&Request::Snapshot)).unwrap();
    drop(stdin);
    let mut stderr = String::new();
    child.stderr.take().unwrap().read_to_string(&mut stderr).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.lines().count(), 1, "{stdout}");
    assert!(stdout.contains("\"State\""), "{stdout}");
    assert!(stderr.contains("recovered generation"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
